"""SPARQL query evaluation engine.

The :class:`Evaluator` executes parsed queries against any object exposing
the graph pattern-matching API (:class:`~repro.store.graph.Graph` or
:class:`~repro.store.dataset.GraphView`).  Evaluation follows SPARQL
semantics for the supported subset:

* group graph patterns join VALUES, triple patterns (with property paths),
  UNION branches, and OPTIONAL (left join) elements;
* FILTERs apply over the group, with expression errors removing the row;
* GROUP BY partitions solutions; aggregates (COUNT/SUM/MIN/MAX/AVG/SAMPLE)
  evaluate per group, skipping error rows; HAVING filters groups;
* DISTINCT, ORDER BY, LIMIT and OFFSET apply to the projected rows.

A deadline can be supplied to bound evaluation time, which is how the
endpoint reproduces the triplestore timeouts discussed in the paper's
Similarity-Search experiment (Section 7.1).
"""

from __future__ import annotations

import time
from typing import Iterable

from ..errors import QueryEvaluationError, QueryTimeoutError
from ..rdf.terms import IRI, Literal, Node, Variable, XSD_DOUBLE, XSD_INTEGER
from .ast import (
    Aggregate,
    Arithmetic,
    AskQuery,
    BindClause,
    BoolOp,
    Comparison,
    ExistsFilter,
    Expression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InExpr,
    MinusPattern,
    NotExpr,
    OptionalPattern,
    OrderCondition,
    Projection,
    PropertyPath,
    Query,
    SelectQuery,
    SubSelect,
    TermExpr,
    TriplePattern,
    UnionPattern,
    ValuesClause,
)
from .compiler import compile_bgp
from .expressions import ExpressionError, effective_boolean_value, evaluate
from .operators import OrderLimit, _Directed, _sorted_top, compile_where
from .optimizer import order_patterns
from .parser import parse_query
from .paths import eval_path
from .results import ResultSet

__all__ = ["Evaluator", "evaluate_query"]

Binding = dict[Variable, Node]

# How many pattern extensions between deadline checks.
_DEADLINE_STRIDE = 2048


class _Deadline:
    """Cheap cooperative timeout checker threaded through evaluation."""

    __slots__ = ("expires_at", "_countdown")

    def __init__(self, timeout_seconds: float | None):
        self.expires_at = None if timeout_seconds is None else time.monotonic() + timeout_seconds
        # Check on the very first operation so even tiny queries observe an
        # already-expired deadline, then fall back to the stride.
        self._countdown = 1

    def check(self) -> None:
        if self.expires_at is None:
            return
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = _DEADLINE_STRIDE
            if time.monotonic() > self.expires_at:
                raise QueryTimeoutError("query evaluation exceeded the deadline")


class Evaluator:
    """Evaluates SPARQL queries against a graph or graph view.

    ``compile=True`` (the default) lowers whole WHERE bodies — BGPs,
    OPTIONAL, UNION, VALUES, BIND, EXISTS/NOT EXISTS, MINUS, nested
    subqueries, and property paths included — onto the unified id-space
    physical-operator pipeline (:mod:`repro.sparql.operators`), and
    qualifying aggregate SELECTs all the way into the fused grouping
    pipeline (:mod:`repro.sparql.aggregator`).  ``compile=False`` keeps
    the term-space interpreter, retained purely as the differential
    oracle; lowering now declines only unsupported path shapes and
    stores without an id backend (multi-graph union views).
    ``plan_cache`` is an optional LRU (the serving cache's plan tier)
    reusing compiled plans — including cached declines — across queries,
    keyed by the WHERE group plus the graph's identity and epoch.
    """

    def __init__(self, graph, optimize: bool = True, compile: bool = True,
                 plan_cache=None, aggregate_counter=None,
                 select_counter=None, vectorize: bool = True,
                 batch_size: int | None = None, parallel: int | None = None,
                 exec_counter=None):
        self.graph = graph
        self.optimize = optimize
        self.compile = compile
        self.plan_cache = plan_cache
        # Optional callable(fused: bool, reason: str | None) invoked once
        # per aggregate SELECT, letting the endpoint count fused vs.
        # fallback executions and tally why a shape fell back.
        self.aggregate_counter = aggregate_counter
        # Same contract for non-aggregate SELECTs:
        # callable(compiled: bool, reason: str | None).
        self.select_counter = select_counter
        # Batched execution of compiled plans (repro.sparql.vectorized):
        # block-at-a-time operators over columnar batches, with optional
        # morsel parallelism.  vectorize=False pins the tuple-at-a-time
        # operator loop — the differential oracle.
        if vectorize:
            from .vectorized import VecConfig

            self.vec_config = VecConfig(batch_size=batch_size,
                                        parallel=parallel)
        else:
            self.vec_config = None
        # Optional callable(batched: bool) invoked once per compiled-plan
        # execution, letting the endpoint count batched vs. tuple runs.
        self.exec_counter = exec_counter

    def _plan_or_order(self, patterns, available):
        """Order a BGP and (when possible) compile it, through the plan cache.

        Returns ``(ordered_patterns, plan)`` where ``plan`` is None when
        the BGP must run on the term-space interpreter.
        """
        key = None
        if self.plan_cache is not None:
            epoch = getattr(self.graph, "epoch", None)
            # Plans embed one graph's term-id assignment, so the key needs
            # the graph's *identity* as well as its version: a shared cache
            # may serve endpoints over different graphs whose epochs
            # coincide.  Graphs without a uid are never plan-cached.
            uid = getattr(self.graph, "uid", None)
            if epoch is not None and uid is not None:
                pattern_vars = set()
                for pattern in patterns:
                    pattern_vars |= pattern.variables()
                key = (
                    tuple(patterns),
                    frozenset(available & pattern_vars),
                    self.optimize,
                    self.compile,
                    uid,
                    epoch,
                )
                from ..serving.cache import MISS

                cached = self.plan_cache.get(key)
                if cached is not MISS:
                    return cached
        if self.optimize and len(patterns) > 1:
            ordered = order_patterns(self.graph, patterns, bound=available)
        else:
            ordered = list(patterns)
        plan = compile_bgp(self.graph, ordered) if self.compile else None
        if key is not None:
            self.plan_cache.put(key, (ordered, plan))
        return ordered, plan

    def _aggregate_plan(self, query: SelectQuery):
        """Compile (or fetch) a fused aggregation plan.

        Returns ``(plan, reason)`` where ``plan`` is None — with a stable
        decline reason — when the query must fall back to term space.
        Declined compilations are cached too: a query shape the fused
        engine cannot take keeps falling back without re-walking its AST
        on every execution.
        """
        from .aggregator import compile_aggregate_ex

        key = None
        if self.plan_cache is not None:
            epoch = getattr(self.graph, "epoch", None)
            uid = getattr(self.graph, "uid", None)
            if epoch is not None and uid is not None:
                key = ("aggregate", query, self.optimize, uid, epoch)
                from ..serving.cache import MISS

                cached = self.plan_cache.get(key)
                if cached is not MISS:
                    return cached
        plan, reason = compile_aggregate_ex(self.graph, query, optimize=self.optimize)
        if key is not None:
            self.plan_cache.put(key, (plan, reason))
        return plan, reason

    def _where_plan(self, where: GroupGraphPattern):
        """Compile (or fetch) a physical plan for a whole WHERE group.

        Returns ``(plan, reason)``; ``plan`` is None — with a stable
        decline reason — when the group must run on the term-space
        interpreter.  Declines are cached alongside plans so unsupported
        shapes pay lowering once per (graph, epoch).
        """
        if not self.compile:
            return None, "compile-disabled"
        key = None
        if self.plan_cache is not None:
            epoch = getattr(self.graph, "epoch", None)
            # Plans embed one graph's term-id assignment, so the key needs
            # the graph's *identity* as well as its version (see
            # _plan_or_order).
            uid = getattr(self.graph, "uid", None)
            if epoch is not None and uid is not None:
                key = ("where", where, self.optimize, uid, epoch)
                from ..serving.cache import MISS

                cached = self.plan_cache.get(key)
                if cached is not MISS:
                    return cached
        plan, reason = compile_where(self.graph, where, optimize=self.optimize)
        if key is not None:
            self.plan_cache.put(key, (plan, reason))
        return plan, reason

    # -- public API ----------------------------------------------------------

    def select(self, query: SelectQuery | str, timeout: float | None = None,
               counted: bool = True) -> ResultSet:
        """Evaluate a SELECT query; returns a :class:`ResultSet`.

        ``counted=False`` suppresses the engine counters — used for the
        nested evaluation of subqueries, which would otherwise double-count
        one endpoint-visible query.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if not isinstance(query, SelectQuery):
            raise QueryEvaluationError("select() requires a SELECT query")
        deadline = _Deadline(timeout)
        # ORDER BY + LIMIT only ever needs the first limit+offset rows, so
        # the sort can run as a bounded heap selection instead of a full
        # O(n log n) sort (heapq.nsmallest is stable, like sorted()).
        top_k = None
        if query.limit is not None:
            top_k = query.limit + (query.offset or 0)
        if query.is_aggregate_query:
            if self.compile:
                plan, reason = self._aggregate_plan(query)
            else:
                plan, reason = None, "compile-disabled"
            if plan is not None:
                # Fused path: the compiled join streams id rows straight
                # into per-group accumulators, never materializing
                # solutions or term-space bindings.  With a vec config the
                # body runs batched and accumulators fold whole segments.
                rows, variables = plan.execute(deadline, vec=self.vec_config)
                if counted and self.exec_counter is not None:
                    self.exec_counter(self.vec_config is not None)
            else:
                solutions = self._eval_group(query.where, [dict()], deadline)
                rows, variables = self._aggregate(query, solutions, deadline)
            if counted and self.aggregate_counter is not None:
                self.aggregate_counter(plan is not None, reason)
            if query.distinct:
                rows = _distinct(rows)
            if query.order_by:
                rows = self._order(rows, variables, query.order_by, limit=top_k)
        else:
            plan, reason = self._where_plan(query.where)
            if counted and self.select_counter is not None:
                self.select_counter(plan is not None, reason)
            rows = None
            if plan is not None:
                if self.vec_config is not None:
                    from .vectorized import vec_rows, vec_solutions

                    fast_vars = self._bare_projection(query)
                    if fast_vars is not None:
                        # All projections are bare variables and no ORDER
                        # BY runs: result rows assemble straight from the
                        # decoded batch columns, skipping binding dicts.
                        rows = vec_rows(plan, fast_vars, deadline,
                                        self.vec_config)
                        variables = query.output_variables()
                    else:
                        solutions = vec_solutions(plan, deadline,
                                                  self.vec_config)
                else:
                    solutions = plan.solutions(deadline)
                if counted and self.exec_counter is not None:
                    self.exec_counter(self.vec_config is not None)
            else:
                solutions = self._eval_group(query.where, [dict()], deadline)
            if rows is None:
                # SPARQL orders the *solutions* before projection, so ORDER
                # BY may reference variables that are not projected.  The
                # top-k bound only applies when no DISTINCT runs afterwards
                # — DISTINCT collapses projected rows, so it may need
                # solutions beyond the first limit+offset.
                if query.order_by:
                    solution_k = None if query.distinct else top_k
                    solutions = self._order_solutions(
                        solutions, query.order_by, limit=solution_k
                    )
                rows, variables = self._project(query, solutions)
            if query.distinct:
                rows = _distinct(rows)
        if query.offset:
            rows = rows[query.offset:]
        if query.limit is not None:
            rows = rows[: query.limit]
        return ResultSet(variables, rows)

    def ask(self, query: AskQuery | str, timeout: float | None = None) -> bool:
        """Evaluate an ASK query; returns whether any solution exists.

        Groups consisting only of triple patterns and filters take a
        backtracking fast path that stops at the first complete solution —
        the behaviour real endpoints give ASK probes, and what keeps
        REOLAP's per-candidate validation independent of the store size.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if not isinstance(query, AskQuery):
            raise QueryEvaluationError("ask() requires an ASK query")
        deadline = _Deadline(timeout)
        if all(isinstance(e, (TriplePattern, Filter)) for e in query.where.elements):
            return self._ask_exists(query.where, deadline)
        plan, _reason = self._where_plan(query.where)
        if plan is not None:
            # Lazy pipeline: stops at the first complete row.  ASK stays
            # tuple-at-a-time even with vectorize on — first-row latency
            # beats batch throughput when one row settles the answer.
            return plan.any(deadline)
        return bool(self._eval_group(query.where, [dict()], deadline, stop_at=1))

    def construct(self, query: "ConstructQuery | str", timeout: float | None = None):
        """Evaluate a CONSTRUCT query; returns a new Graph.

        Template triples left incomplete by unbound variables, or whose
        instantiation violates RDF positional rules (e.g. a literal
        subject), are skipped per the SPARQL specification.
        """
        from ..store.graph import Graph as _Graph
        from .ast import ConstructQuery

        if isinstance(query, str):
            query = parse_query(query)
        if not isinstance(query, ConstructQuery):
            raise QueryEvaluationError("construct() requires a CONSTRUCT query")
        deadline = _Deadline(timeout)
        plan, _reason = self._where_plan(query.where)
        if plan is not None:
            if self.vec_config is not None:
                from .vectorized import vec_solutions

                solutions = vec_solutions(plan, deadline, self.vec_config)
            else:
                solutions = plan.solutions(deadline)
        else:
            solutions = self._eval_group(query.where, [dict()], deadline)
        result = _Graph()
        from ..rdf.triple import Triple as _Triple

        emitted = 0
        for binding in solutions:
            for pattern in query.template:
                s = _resolve(pattern.s, binding) if isinstance(pattern.s, Variable) else pattern.s
                p = _resolve(pattern.p, binding) if isinstance(pattern.p, Variable) else pattern.p
                o = _resolve(pattern.o, binding) if isinstance(pattern.o, Variable) else pattern.o
                if s is None or p is None or o is None:
                    continue
                try:
                    triple = _Triple(s, p, o)
                except TypeError:
                    continue  # e.g. literal in subject position
                if result.add(triple):
                    emitted += 1
                    if query.limit is not None and emitted >= query.limit:
                        return result
        return result

    def _ask_exists(self, group: GroupGraphPattern, deadline: _Deadline) -> bool:
        """Depth-first existence check over a pattern-only group."""
        patterns = group.triple_patterns()
        filters = list(group.filters())
        if patterns:
            patterns, plan = self._plan_or_order(patterns, set())
            if plan is not None:
                return plan.exists([dict()], filters, set(), deadline)

        def search(index: int, binding: Binding, pending: list[Filter]) -> bool:
            if index == len(patterns):
                return bool(_apply_filters([binding], pending))
            pattern = patterns[index]
            s_term = _resolve(pattern.s, binding)
            o_term = _resolve(pattern.o, binding)
            predicate = pattern.p
            if isinstance(predicate, PropertyPath):
                candidates = (
                    _try_bind(binding, pattern, subj, None, obj)
                    for subj, obj in eval_path(self.graph, predicate, s_term, o_term, deadline)
                )
            else:
                p_term = (
                    _resolve(predicate, binding)
                    if isinstance(predicate, Variable) else predicate
                )
                candidates = (
                    _try_bind(binding, pattern, t.s, t.p, t.o)
                    for t in self.graph.triples(s_term, p_term, o_term)
                )
            for extended in candidates:
                deadline.check()
                if extended is None:
                    continue
                ready = [
                    f for f in pending if f.expression.variables() <= extended.keys()
                ]
                if ready and not _apply_filters([extended], ready):
                    continue
                remaining = [f for f in pending if f not in ready]
                if search(index + 1, extended, remaining):
                    return True
            return False

        return search(0, {}, filters)

    # -- group graph pattern -------------------------------------------------

    def _eval_group(
        self,
        group: GroupGraphPattern,
        initial: list[Binding],
        deadline: _Deadline,
        stop_at: int | None = None,
    ) -> list[Binding]:
        values_clauses = [e for e in group.elements if isinstance(e, ValuesClause)]
        patterns = [e for e in group.elements if isinstance(e, TriplePattern)]
        filters = [e for e in group.elements if isinstance(e, Filter)]
        unions = [e for e in group.elements if isinstance(e, UnionPattern)]
        optionals = [e for e in group.elements if isinstance(e, OptionalPattern)]
        binds = [e for e in group.elements if isinstance(e, BindClause)]
        exists_filters = [e for e in group.elements if isinstance(e, ExistsFilter)]
        minus_patterns = [e for e in group.elements if isinstance(e, MinusPattern)]
        subselects = [e for e in group.elements if isinstance(e, SubSelect)]

        solutions = list(initial)
        available: set[Variable] = set()
        for binding in initial:
            available |= set(binding)

        for clause in values_clauses:
            solutions = _join_values(solutions, clause)
            available |= set(clause.variables_)
        for subselect in subselects:
            # Bottom-up: evaluate the subquery independently, then join its
            # solutions with the group's on shared variables.
            inner = self.select(subselect.query, counted=False)
            rows = tuple(tuple(row) for row in inner.rows)
            clause = ValuesClause(tuple(inner.variables), rows)
            solutions = _join_values(solutions, clause)
            available |= set(inner.variables)

        pending = list(filters)
        if patterns:
            patterns, plan = self._plan_or_order(patterns, available)
            if plan is not None:
                # Compiled id-space join: bindings flow as register files of
                # ints, with ready filters applied at each step; decoding
                # back to terms happens once, at the end.
                solutions, pending = plan.run(solutions, pending, available, deadline)
                for pattern in patterns:
                    available |= pattern.variables()
            else:
                for pattern in patterns:
                    solutions = self._extend(solutions, pattern, deadline)
                    available |= pattern.variables()
                    # Apply every filter whose variables are all produced
                    # already: shrinking the intermediate result early is the
                    # main lever the engine has against large joins.
                    ready = [f for f in pending if f.expression.variables() <= available]
                    if ready:
                        pending = [f for f in pending if f not in ready]
                        solutions = _apply_filters(solutions, ready)
                    if not solutions:
                        break
        for union in unions:
            merged: list[Binding] = []
            for binding in solutions:
                for branch in union.branches:
                    merged.extend(self._eval_group(branch, [binding], deadline))
            solutions = merged
            for branch in union.branches:
                available |= branch.variables()
        for optional in optionals:
            extended: list[Binding] = []
            for binding in solutions:
                matches = self._eval_group(optional.pattern, [binding], deadline)
                extended.extend(matches if matches else [binding])
            solutions = extended
        for bind in binds:
            if bind.variable in available:
                raise QueryEvaluationError(
                    f"BIND would rebind in-scope variable {bind.variable.n3()}"
                )
            available.add(bind.variable)
            for binding in solutions:
                try:
                    binding[bind.variable] = evaluate(bind.expression, binding)
                except ExpressionError:
                    pass  # SPARQL: an erroring BIND leaves the variable unbound
        for exists in exists_filters:
            kept: list[Binding] = []
            for binding in solutions:
                matched = bool(self._eval_group(exists.pattern, [binding], deadline, stop_at=1))
                if matched != exists.negated:
                    kept.append(binding)
            solutions = kept
        for minus in minus_patterns:
            right = self._eval_group(minus.pattern, [dict()], deadline)
            solutions = [
                binding for binding in solutions
                if not _minus_removes(binding, right)
            ]
        if pending:
            solutions = _apply_filters(solutions, pending)
        if stop_at is not None:
            return solutions[:stop_at]
        return solutions

    def _extend(
        self, solutions: list[Binding], pattern: TriplePattern, deadline: _Deadline
    ) -> list[Binding]:
        result: list[Binding] = []
        predicate = pattern.p
        for binding in solutions:
            s_term = _resolve(pattern.s, binding)
            o_term = _resolve(pattern.o, binding)
            if isinstance(predicate, PropertyPath):
                for subj, obj in eval_path(self.graph, predicate, s_term, o_term, deadline):
                    deadline.check()
                    extended = _try_bind(binding, pattern, subj, None, obj)
                    if extended is not None:
                        result.append(extended)
                continue
            p_term = _resolve(predicate, binding) if isinstance(predicate, Variable) else predicate
            for triple in self.graph.triples(s_term, p_term, o_term):
                deadline.check()
                extended = _try_bind(binding, pattern, triple.s, triple.p, triple.o)
                if extended is not None:
                    result.append(extended)
        return result

    # -- projection and aggregation -------------------------------------------

    @staticmethod
    def _bare_projection(query: SelectQuery):
        """Source variables for the batched direct-projection fast path.

        Returns the per-column source variable list when every projection
        is a bare variable (``SELECT *`` or ``SELECT ?x (?y AS ?z)``) and
        no ORDER BY needs full solutions first; None otherwise.  Matches
        ``_project`` exactly: a bare-variable expression evaluates to the
        binding's term or None when unbound.
        """
        if query.order_by:
            return None
        if query.select_all:
            return query.output_variables()
        sources = []
        for projection in query.projections:
            expr = projection.expression
            if isinstance(expr, TermExpr) and isinstance(expr.term, Variable):
                sources.append(expr.term)
            else:
                return None
        return sources

    def _project(
        self, query: SelectQuery, solutions: list[Binding]
    ) -> tuple[list[tuple], list[Variable]]:
        variables = query.output_variables()
        rows: list[tuple] = []
        if query.select_all:
            for binding in solutions:
                rows.append(tuple(binding.get(v) for v in variables))
            return rows, variables
        for binding in solutions:
            row = []
            for projection in query.projections:
                try:
                    row.append(evaluate(projection.expression, binding))
                except ExpressionError:
                    row.append(None)
            rows.append(tuple(row))
        return rows, variables

    def _aggregate(
        self, query: SelectQuery, solutions: list[Binding], deadline: _Deadline
    ) -> tuple[list[tuple], list[Variable]]:
        group_vars = list(query.group_by)
        groups: dict[tuple, list[Binding]] = {}
        if group_vars:
            for binding in solutions:
                deadline.check()
                key = tuple(binding.get(v) for v in group_vars)
                groups.setdefault(key, []).append(binding)
        else:
            groups[()] = solutions

        variables = [p.variable for p in query.projections]
        rows: list[tuple] = []
        for key, members in groups.items():
            key_binding: Binding = dict(zip(group_vars, key))
            # SPARQL keeps groups whose key has unbound components: the key
            # tuple carries None there, and projecting such a variable
            # yields an unbound (None) cell — groups are never dropped for
            # missing keys, only by HAVING.
            keep = True
            for having in query.having:
                try:
                    value = _eval_grouped(having, members, key_binding)
                    if not effective_boolean_value(value):
                        keep = False
                        break
                except ExpressionError:
                    keep = False
                    break
            if not keep:
                continue
            row = []
            for projection in query.projections:
                try:
                    row.append(_eval_grouped(projection.expression, members, key_binding))
                except ExpressionError:
                    row.append(None)
            rows.append(tuple(row))
        return rows, variables

    def _order_solutions(
        self,
        solutions: list[Binding],
        conditions: tuple[OrderCondition, ...],
        limit: int | None = None,
    ) -> list[Binding]:
        # Both engines share the OrderLimit physical operator, so sort-key
        # construction, error ordering, and top-k tie-breaking are
        # identical by construction.
        return OrderLimit(conditions, limit).apply(solutions)

    def _order(
        self,
        rows: list[tuple],
        variables: list[Variable],
        conditions: tuple[OrderCondition, ...],
        limit: int | None = None,
    ) -> list[tuple]:
        def sort_key(row: tuple):
            binding = {v: t for v, t in zip(variables, row) if t is not None}
            keys = []
            for condition in conditions:
                try:
                    value = evaluate(condition.expression, binding)
                    key = (1,) + value.sort_key()
                except ExpressionError:
                    key = (0,)
                keys.append(_Directed(key, condition.ascending))
            return keys

        return _sorted_top(rows, sort_key, limit)


# _sorted_top and _Directed moved to repro.sparql.operators (shared with
# the OrderLimit physical operator); re-imported above for local use.


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def _resolve(term, binding: Binding):
    """Map a pattern position to a concrete term or a wildcard (None)."""
    if isinstance(term, Variable):
        return binding.get(term)
    return term


def _try_bind(binding: Binding, pattern: TriplePattern, s, p, o) -> Binding | None:
    """Extend ``binding`` with the match, or None on an inconsistency."""
    extended = dict(binding)
    for position, value in ((pattern.s, s), (pattern.p, p), (pattern.o, o)):
        if not isinstance(position, Variable) or value is None:
            continue
        bound = extended.get(position)
        if bound is None:
            extended[position] = value
        elif bound != value:
            return None
    return extended


def _join_values(solutions: list[Binding], clause: ValuesClause) -> list[Binding]:
    joined: list[Binding] = []
    for binding in solutions:
        for row in clause.rows:
            candidate = dict(binding)
            compatible = True
            for variable, value in zip(clause.variables_, row):
                if value is None:  # UNDEF leaves the variable as-is.
                    continue
                bound = candidate.get(variable)
                if bound is None:
                    candidate[variable] = value
                elif bound != value:
                    compatible = False
                    break
            if compatible:
                joined.append(candidate)
    return joined


def _apply_filters(solutions: list[Binding], filters: Iterable[Filter]) -> list[Binding]:
    kept = solutions
    for constraint in filters:
        passing: list[Binding] = []
        for binding in kept:
            try:
                if effective_boolean_value(evaluate(constraint.expression, binding)):
                    passing.append(binding)
            except ExpressionError:
                continue  # SPARQL: an erroring filter removes the row.
        kept = passing
    return kept


def _minus_removes(binding: Binding, right: list[Binding]) -> bool:
    """SPARQL MINUS: drop μ when some μ' is compatible with shared domain."""
    for other in right:
        shared = binding.keys() & other.keys()
        if not shared:
            continue
        if all(binding[v] == other[v] for v in shared):
            return True
    return False


def _distinct(rows: list[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    unique: list[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return unique


def _eval_grouped(expression: Expression, members: list[Binding], key_binding: Binding) -> Node:
    """Evaluate an expression in a grouping context.

    Aggregate sub-expressions are computed over the group's solutions
    (skipping rows whose argument errors, per SPARQL); everything else is
    evaluated against the group-key binding.
    """
    if isinstance(expression, Aggregate):
        return _compute_aggregate(expression, members)
    if isinstance(expression, TermExpr):
        return evaluate(expression, key_binding)
    if isinstance(expression, Comparison):
        from .expressions import term_compare

        left = _eval_grouped(expression.left, members, key_binding)
        right = _eval_grouped(expression.right, members, key_binding)
        result = term_compare(left, right, expression.op)
        from .expressions import FALSE, TRUE

        return TRUE if result else FALSE
    if isinstance(expression, Arithmetic):
        left = _eval_grouped(expression.left, members, key_binding)
        right = _eval_grouped(expression.right, members, key_binding)
        rewritten = Arithmetic(expression.op, TermExpr(left), TermExpr(right))
        return evaluate(rewritten, {})
    if isinstance(expression, (BoolOp, NotExpr, FunctionCall, InExpr)):
        # Recursively resolve aggregates, then evaluate the residual
        # expression against the key binding.
        resolved = _resolve_aggregates(expression, members)
        return evaluate(resolved, key_binding)
    return evaluate(expression, key_binding)


def _resolve_aggregates(expression: Expression, members: list[Binding]) -> Expression:
    if isinstance(expression, Aggregate):
        return TermExpr(_compute_aggregate(expression, members))
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            _resolve_aggregates(expression.left, members),
            _resolve_aggregates(expression.right, members),
        )
    if isinstance(expression, Arithmetic):
        return Arithmetic(
            expression.op,
            _resolve_aggregates(expression.left, members),
            _resolve_aggregates(expression.right, members),
        )
    if isinstance(expression, BoolOp):
        return BoolOp(
            expression.op,
            tuple(_resolve_aggregates(o, members) for o in expression.operands),
        )
    if isinstance(expression, NotExpr):
        return NotExpr(_resolve_aggregates(expression.operand, members))
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name,
            tuple(_resolve_aggregates(a, members) for a in expression.args),
        )
    if isinstance(expression, InExpr):
        return InExpr(
            _resolve_aggregates(expression.operand, members),
            tuple(_resolve_aggregates(o, members) for o in expression.options),
            expression.negated,
        )
    return expression


def _compute_aggregate(aggregate: Aggregate, members: list[Binding]) -> Node:
    if aggregate.func == "COUNT" and aggregate.arg is None:
        return Literal(str(len(members)), datatype=XSD_INTEGER)
    values: list[Node] = []
    for binding in members:
        try:
            values.append(evaluate(aggregate.arg, binding))
        except ExpressionError:
            continue  # SPARQL: rows whose aggregate argument errors are skipped.
    if aggregate.distinct:
        seen: set[Node] = set()
        unique: list[Node] = []
        for value in values:
            if value not in seen:
                seen.add(value)
                unique.append(value)
        values = unique
    func = aggregate.func
    if func == "COUNT":
        return Literal(str(len(values)), datatype=XSD_INTEGER)
    if func == "GROUP_CONCAT":
        parts = []
        for value in values:
            if isinstance(value, Literal):
                parts.append(value.lexical)
            elif isinstance(value, IRI):
                parts.append(value.value)
            else:
                raise ExpressionError(f"GROUP_CONCAT over {value!r}")
        return Literal(" ".join(parts))
    if func == "SAMPLE":
        if not values:
            raise ExpressionError("SAMPLE over an empty group")
        return values[0]
    if func in ("MIN", "MAX"):
        if not values:
            raise ExpressionError(f"{func} over an empty group")
        # Single pass instead of a full sort.  Replacement rules replicate
        # the stable sort this used to be: MIN keeps the first minimal
        # value (strict <), MAX the last maximal one (>=).
        best = values[0]
        best_key = best.sort_key()
        if func == "MIN":
            for value in values[1:]:
                key = value.sort_key()
                if key < best_key:
                    best, best_key = value, key
        else:
            for value in values[1:]:
                key = value.sort_key()
                if key >= best_key:
                    best, best_key = value, key
        return best
    # SUM / AVG over numeric literals.
    numbers: list[float] = []
    for value in values:
        if not isinstance(value, Literal) or not value.is_numeric:
            raise ExpressionError(f"{func} over non-numeric value {value!r}")
        numbers.append(value.numeric_value())
    if func == "SUM":
        total = sum(numbers)
        return _number_literal(total)
    if func == "AVG":
        if not numbers:
            return Literal("0", datatype=XSD_INTEGER)
        return _number_literal(sum(numbers) / len(numbers))
    raise ExpressionError(f"unsupported aggregate {func}")


def _number_literal(value: float) -> Literal:
    if float(value).is_integer() and abs(value) < 1e15:
        return Literal(str(int(value)), datatype=XSD_INTEGER)
    return Literal(repr(value), datatype=XSD_DOUBLE)


def evaluate_query(graph, query: Query | str, timeout: float | None = None):
    """One-shot evaluation: SELECT → ResultSet, ASK → bool, CONSTRUCT → Graph."""
    from .ast import ConstructQuery

    if isinstance(query, str):
        query = parse_query(query)
    evaluator = Evaluator(graph)
    if isinstance(query, AskQuery):
        return evaluator.ask(query, timeout=timeout)
    if isinstance(query, ConstructQuery):
        return evaluator.construct(query, timeout=timeout)
    return evaluator.select(query, timeout=timeout)
