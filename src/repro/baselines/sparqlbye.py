"""SPARQLByE baseline (Diaz, Arenas, Benedikt — PVLDB 2016).

Reimplementation of the comparator's *documented* behaviour for the
paper's Section 7.2 / Figure 10 comparison.  SPARQLByE reverse-engineers
the minimal basic graph pattern covering a set of example entities:

* each example value is matched to entities by label;
* for every matched entity, the BGP contains the 1-hop patterns that
  characterize it (here, its ``qb4o:memberOf`` level membership, as in
  Figure 10a's ``?x olap:memberOf schema:year``);
* crucially, it "does not navigate connections with 2 or more hops", so
  the pattern never joins the entities to observation nodes, and it has
  no notion of measures, grouping, or aggregation.

Consequently — and this is the point the comparison makes — its output for
an analytics-intent example is a plain ``SELECT *`` over disconnected
entity patterns, and asking it about an observation directly yields an
empty result.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..qb.vocabulary import MEMBER_OF, OBSERVATION_CLASS, TYPE
from ..rdf.terms import IRI, Node, Variable
from ..sparql.ast import GroupGraphPattern, SelectQuery, TriplePattern
from ..store.endpoint import Endpoint

__all__ = ["SPARQLByE", "ByExampleResult"]


@dataclass(frozen=True)
class ByExampleResult:
    """The baseline's output: a query (or None when nothing matched)."""

    query: SelectQuery | None
    matched_entities: tuple[IRI, ...]

    @property
    def has_aggregation(self) -> bool:
        """Always False: SPARQLByE produces no GROUP BY / aggregates."""
        return self.query is not None and bool(self.query.group_by)

    @property
    def mentions_observations(self) -> bool:
        """Whether the BGP joins the examples to observation nodes."""
        if self.query is None:
            return False
        for pattern in self.query.where.triple_patterns():
            if pattern.o == OBSERVATION_CLASS:
                return True
        return False


class SPARQLByE:
    """Minimal-BGP reverse engineering from example entities."""

    def __init__(self, endpoint: Endpoint):
        self.endpoint = endpoint

    def reverse_engineer(self, example: tuple[str, ...]) -> ByExampleResult:
        """Derive the minimal covering BGP for the example values.

        One fresh variable per example value; each variable is constrained
        by the 1-hop characterization of the entities the value matched.
        """
        elements: list[TriplePattern] = []
        matched: list[IRI] = []
        for position, keyword in enumerate(example):
            variable = Variable(f"x{position}")
            entity = self._match_entity(keyword)
            if entity is None:
                continue
            matched.append(entity)
            characterized = False
            for pattern in self._one_hop_patterns(entity, variable):
                elements.append(pattern)
                characterized = True
            if not characterized:
                # Fall back to the bare entity as a constant: SPARQLByE
                # still reports the match even without class information.
                elements.append(TriplePattern(variable, Variable(f"p{position}"), entity))
        if not elements:
            return ByExampleResult(query=None, matched_entities=())
        query = SelectQuery(
            projections=(),
            where=GroupGraphPattern(tuple(elements)),
            select_all=True,
        )
        return ByExampleResult(query=query, matched_entities=tuple(matched))

    def _match_entity(self, keyword: str) -> IRI | None:
        hits = self.endpoint.resolve_keyword(keyword)
        for entity, _predicate, _literal in hits:
            if isinstance(entity, IRI):
                if self._is_observation(entity):
                    # SPARQLByE returns an empty result for observation
                    # examples: it cannot characterize multi-hop contexts.
                    return None
                return entity
        return None

    def _is_observation(self, entity: IRI) -> bool:
        return self.endpoint.ask(
            f"ASK {{ {entity.n3()} a {OBSERVATION_CLASS.n3()} }}"
        )

    def _one_hop_patterns(self, entity: IRI, variable: Variable) -> list[TriplePattern]:
        """The entity's level memberships, as 1-hop characterizations."""
        result = self.endpoint.select(
            f"SELECT DISTINCT ?level WHERE {{ {entity.n3()} {MEMBER_OF.n3()} ?level }}"
        )
        patterns = []
        for (level,) in result.rows:
            if isinstance(level, IRI):
                patterns.append(TriplePattern(variable, MEMBER_OF, level))
        return patterns
