"""Baseline comparators reimplemented for the paper's Section 7.2."""

from .sparqlbye import ByExampleResult, SPARQLByE

__all__ = ["SPARQLByE", "ByExampleResult"]
