"""The concurrent query service: many analysts, one shared store.

:class:`QueryService` is the serving-layer front door.  It owns

* one shared :class:`~repro.store.Endpoint` (wired with a
  :class:`~repro.serving.cache.QueryCache` unless caching is disabled),
* a :class:`~repro.serving.executor.RWLock` so any number of concurrent
  queries share the store while mutations run exclusively,
* a :class:`~repro.serving.executor.ServingExecutor` for asynchronous
  submission with admission control and per-request deadlines,
* a session manager multiplexing many
  :class:`~repro.core.session.ExplorationSession` instances — one per
  analyst — over the shared endpoint, and
* aggregate serving statistics: request counts, throughput, p50/p95
  latency, and the cache hit rate.

Every query issued through the service — directly via :meth:`execute` /
:meth:`submit`, or indirectly by a managed exploration session — passes
through a guarded endpoint proxy that takes the read lock and records the
request's latency, so the stats cover the whole mixed workload.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from ..errors import QueryTimeoutError, ServiceShutdownError, ServingError
from ..store.dataset import GraphView
from ..store.endpoint import DEFAULT_TIMEOUT, Endpoint
from ..store.graph import Graph
from .cache import QueryCache
from .executor import RWLock, ServingExecutor

__all__ = ["QueryService", "ServingStats"]

#: How many recent request latencies feed the percentile estimates.
_LATENCY_WINDOW = 8192


@dataclass
class ServingStats:
    """A point-in-time snapshot of the service's aggregate behaviour."""

    requests: int
    errors: int
    timeouts: int
    open_sessions: int
    uptime: float
    throughput: float  # completed requests / second of uptime
    p50_latency: float  # seconds; 0.0 before any request completes
    p95_latency: float
    cache_hit_rate: float
    # Resilience (zero / None when the service runs without a
    # ResilientEndpoint): see repro.resilience.
    shed_requests: int = 0  # queued requests dropped after deadline expiry
    retries: int = 0  # transient faults retried by the resilient endpoint
    breaker_state: str | None = None  # closed / open / half-open
    breaker_trips: int = 0
    breaker_rejections: int = 0  # calls shed by the open breaker
    stale_served: int = 0  # shed calls answered from the stale tier

    def pretty(self) -> str:
        lines = [
            f"requests        {self.requests}",
            f"errors          {self.errors} ({self.timeouts} timeouts)",
            f"open sessions   {self.open_sessions}",
            f"uptime          {self.uptime:.1f}s",
            f"throughput      {self.throughput:.1f} req/s",
            f"latency p50     {self.p50_latency * 1000:.2f}ms",
            f"latency p95     {self.p95_latency * 1000:.2f}ms",
            f"cache hit rate  {self.cache_hit_rate * 100:.1f}%",
            f"shed (queue)    {self.shed_requests}",
        ]
        if self.breaker_state is not None:
            lines.append(
                f"breaker         {self.breaker_state} "
                f"({self.breaker_trips} trips, "
                f"{self.breaker_rejections} shed, "
                f"{self.stale_served} stale answers)"
            )
        if self.retries or self.breaker_state is not None:
            lines.append(f"retries         {self.retries}")
        return "\n".join(lines)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = max(0, min(len(sorted_values) - 1,
                       round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


class _GuardedEndpoint:
    """Endpoint proxy: read-locks the store and meters every query.

    Duck-types the :class:`~repro.store.Endpoint` query surface, so the
    exploration session, REOLAP, and the refinement operators can run
    against it unchanged.  Each call holds the service's read lock for the
    duration of evaluation — mutations submitted through
    :meth:`QueryService.mutate` wait for in-flight queries and vice versa.
    """

    def __init__(self, service: "QueryService", inner: Endpoint):
        self._service = service
        self._inner = inner

    # Endpoint attributes the analytics layer reads directly.
    @property
    def graph(self):
        return self._inner.graph

    @property
    def stats(self):
        return self._inner.stats

    @property
    def default_timeout(self):
        return self._inner.default_timeout

    @property
    def cache(self):
        return self._inner.cache

    @property
    def text_index(self):
        with self._service._rwlock.read_locked():
            return self._inner.text_index

    @property
    def resilience(self):
        """Resilience counters when the inner endpoint is resilient."""
        return getattr(self._inner, "resilience", None)

    @property
    def events(self):
        """Injected-fault log when the chain ends in a fault injector."""
        return getattr(self._inner, "events", [])

    def _metered(self, fn, *args, **kwargs):
        start = time.monotonic()
        try:
            with self._service._rwlock.read_locked():
                result = fn(*args, **kwargs)
        except QueryTimeoutError:
            self._service._record(time.monotonic() - start, timeout=True)
            raise
        except Exception:
            self._service._record(time.monotonic() - start, error=True)
            raise
        self._service._record(time.monotonic() - start)
        return result

    def select(self, query, timeout=DEFAULT_TIMEOUT):
        return self._metered(self._inner.select, query, timeout=timeout)

    def ask(self, query, timeout=DEFAULT_TIMEOUT):
        return self._metered(self._inner.ask, query, timeout=timeout)

    def ask_batch(self, queries, timeout=DEFAULT_TIMEOUT):
        # One metered call (and one read-lock hold) for the whole batch.
        return self._metered(self._inner.ask_batch, queries, timeout=timeout)

    def construct(self, query, timeout=DEFAULT_TIMEOUT):
        return self._metered(self._inner.construct, query, timeout=timeout)

    def query(self, text, timeout=DEFAULT_TIMEOUT):
        return self._metered(self._inner.query, text, timeout=timeout)

    def resolve_keyword(self, keyword, exact=True):
        return self._metered(self._inner.resolve_keyword, keyword, exact=exact)

    def refresh_text_index(self):
        with self._service._rwlock.write_locked():
            self._inner.refresh_text_index()

    # Reuse Endpoint's probe logic; its self.ask/self.select calls come
    # back through this proxy, so each leg takes the read lock separately
    # (the RWLock is not reentrant).
    is_non_empty = Endpoint.is_non_empty

    def __repr__(self) -> str:
        return f"<GuardedEndpoint over {self._inner!r}>"


class QueryService:
    """Serves concurrent query and exploration traffic over one store.

    Construct it from a :class:`~repro.store.Graph` / ``GraphView`` (an
    endpoint is built internally) or from an existing endpoint::

        service = QueryService(graph, workers=8)
        rows = service.execute("SELECT ?s WHERE { ?s ?p ?o }")
        future = service.submit("ASK { ?s a ?c }")
        sid = service.open_session(OBSERVATION_CLASS)
        service.session(sid).synthesize("Germany", "2014")
        print(service.stats().pretty())
        service.shutdown()

    ``cache=None`` with ``cache_size > 0`` (the default) builds a
    :class:`QueryCache`; pass ``cache_size=0`` to serve uncached.
    """

    def __init__(
        self,
        target: Graph | GraphView | Endpoint,
        workers: int = 4,
        max_pending: int | None = None,
        cache: QueryCache | None = None,
        cache_size: int = 4096,
        default_timeout: float | None = None,
        request_deadline: float | None = None,
        retry: "RetryPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
        serve_stale: bool = False,
        vectorize: bool = True,
        batch_size: int | None = None,
        parallel: int | None = None,
    ):
        if cache is None and cache_size > 0:
            cache = QueryCache(max_results=cache_size)
        self.cache = cache
        if isinstance(target, (Graph, GraphView)):
            self._endpoint = Endpoint(
                target, default_timeout=default_timeout, cache=cache,
                vectorize=vectorize, batch_size=batch_size, parallel=parallel,
            )
        else:
            # An Endpoint, or anything endpoint-shaped (a FaultInjector,
            # an already-wrapped ResilientEndpoint, ...).
            self._endpoint = target
            if (cache is not None and target.cache is None
                    and isinstance(target, Endpoint)):
                target.cache = cache
            else:
                self.cache = target.cache
        # Optional resilience decoration: retries for transient faults, a
        # circuit breaker shedding calls to a persistently failing store,
        # and (with serve_stale) answers from the last-known-good results
        # while the breaker is open.
        self._resilient = None
        if retry is not None or breaker is not None or serve_stale:
            from ..resilience import ResilientEndpoint

            self._resilient = ResilientEndpoint(
                self._endpoint, retry=retry, breaker=breaker,
                serve_stale=serve_stale,
            )
        self.request_deadline = request_deadline
        self._rwlock = RWLock()
        self._executor = ServingExecutor(workers=workers, max_pending=max_pending)
        self._guarded = _GuardedEndpoint(
            self, self._resilient if self._resilient is not None else self._endpoint
        )
        self._stats_lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._requests = 0
        self._errors = 0
        self._timeouts = 0
        self._started_at = time.monotonic()
        self._sessions: dict[str, object] = {}
        self._session_seq = 0
        self._vgraphs: dict[object, object] = {}
        self._vgraph_lock = threading.Lock()
        self._closed = False

    # -- direct querying ---------------------------------------------------

    @property
    def endpoint(self) -> _GuardedEndpoint:
        """The metered, read-locked endpoint facade."""
        return self._guarded

    @property
    def resilient(self):
        """The ResilientEndpoint decorator, or None when not configured."""
        return self._resilient

    @property
    def executor(self) -> ServingExecutor:
        """The shared worker pool (the HTTP front-end dispatches onto it)."""
        return self._executor

    def execute(self, text: str, timeout=DEFAULT_TIMEOUT):
        """Run one query string synchronously on the caller's thread."""
        self._check_open()
        return self._guarded.query(text, timeout=timeout)

    def submit(self, text: str, timeout=DEFAULT_TIMEOUT):
        """Queue one query string on the worker pool; returns a Future.

        Raises :class:`~repro.errors.AdmissionError` when the bounded
        queue is full.  With a ``request_deadline`` configured, time spent
        queued counts against the request's evaluation budget.

        The ``DEFAULT_TIMEOUT`` sentinel is resolved to the endpoint's
        configured default *before* submission: the executor's deadline
        composition takes the minimum of the evaluation timeout and the
        remaining queue budget, and that minimum is only meaningful over
        the resolved value.  (Previously the sentinel was replaced by the
        remaining deadline outright, silently extending a request past
        the endpoint's default.)  Explicit ``timeout=0`` and
        ``timeout=None`` pass through literally — ``0`` is an
        already-expired budget, ``None`` disables the evaluation timeout
        and leaves only the request deadline.
        """
        self._check_open()
        deadline = (
            None
            if self.request_deadline is None
            else time.monotonic() + self.request_deadline
        )
        if timeout is DEFAULT_TIMEOUT:
            timeout = self._guarded.default_timeout
        return self._executor.submit(
            self._guarded.query, text, timeout=timeout, deadline=deadline
        )

    def mutate(self, fn):
        """Apply ``fn(graph)`` under the write lock; returns its result.

        The graph's epoch counter advances with each mutation, so all
        cached results for the old state become unreachable atomically
        once the write lock is released.
        """
        self._check_open()
        with self._rwlock.write_locked():
            return fn(self._endpoint.graph)

    # -- session management ------------------------------------------------

    def vgraph(self, observation_class):
        """The shared virtual schema graph for an observation class.

        Bootstrapped on first use and reused by every session over the
        same class — the bootstrap crawl itself runs through the cache,
        so concurrent session creation after the first is cheap.
        """
        from ..core.virtual_graph import VirtualSchemaGraph

        with self._vgraph_lock:
            vgraph = self._vgraphs.get(observation_class)
            if vgraph is None:
                vgraph = VirtualSchemaGraph.bootstrap(self._guarded, observation_class)
                self._vgraphs[observation_class] = vgraph
            return vgraph

    def open_session(self, observation_class, session_id: str | None = None,
                     endpoint=None, **session_kwargs) -> str:
        """Create a managed exploration session; returns its id.

        ``endpoint`` overrides the session's query interface — the HTTP
        front-end passes a per-tenant resilient decorator *over* the
        guarded endpoint here, so tenant isolation (own breaker, own
        retry budget) composes with the shared metering and read lock.
        """
        self._check_open()
        from ..core.session import ExplorationSession

        vgraph = self.vgraph(observation_class)
        session = ExplorationSession(
            endpoint if endpoint is not None else self._guarded,
            vgraph, **session_kwargs)
        with self._stats_lock:
            if session_id is None:
                self._session_seq += 1
                session_id = f"s{self._session_seq}"
            if session_id in self._sessions:
                raise ServingError(f"session {session_id!r} already open")
            self._sessions[session_id] = session
        return session_id

    def session(self, session_id: str):
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ServingError(f"no open session {session_id!r}") from None

    def close_session(self, session_id: str) -> None:
        with self._stats_lock:
            if self._sessions.pop(session_id, None) is None:
                raise ServingError(f"no open session {session_id!r}")

    def session_ids(self) -> list[str]:
        with self._stats_lock:
            return sorted(self._sessions)

    # -- statistics --------------------------------------------------------

    def _record(self, elapsed: float, error: bool = False,
                timeout: bool = False) -> None:
        with self._stats_lock:
            self._requests += 1
            self._latencies.append(elapsed)
            if timeout:
                self._timeouts += 1
                self._errors += 1
            elif error:
                self._errors += 1

    def stats(self) -> ServingStats:
        with self._stats_lock:
            latencies = sorted(self._latencies)
            requests = self._requests
            errors = self._errors
            timeouts = self._timeouts
            open_sessions = len(self._sessions)
        uptime = max(time.monotonic() - self._started_at, 1e-9)
        shed = self._executor.stats.deadline_expired
        breaker_state = None
        retries = breaker_trips = breaker_rejections = stale_served = 0
        if self._resilient is not None:
            resilience = self._resilient.resilience.snapshot()
            retries = resilience.retries
            breaker_rejections = resilience.breaker_rejections
            stale_served = resilience.stale_served
            if self._resilient.breaker is not None:
                breaker_state = self._resilient.breaker.state
                breaker_trips = self._resilient.breaker.stats.trips
        return ServingStats(
            requests=requests,
            errors=errors,
            timeouts=timeouts,
            open_sessions=open_sessions,
            uptime=uptime,
            throughput=requests / uptime,
            p50_latency=_percentile(latencies, 0.50),
            p95_latency=_percentile(latencies, 0.95),
            cache_hit_rate=self.cache.hit_rate if self.cache else 0.0,
            shed_requests=shed,
            retries=retries,
            breaker_state=breaker_state,
            breaker_trips=breaker_trips,
            breaker_rejections=breaker_rejections,
            stale_served=stale_served,
        )

    @property
    def executor_stats(self):
        return self._executor.stats

    # -- lifecycle ---------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceShutdownError("query service has been shut down")

    def shutdown(self, wait: bool = True) -> None:
        """Stop admitting work, drain the pool, drop all sessions."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=wait)
        with self._stats_lock:
            self._sessions.clear()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:
        state = "shutdown" if self._closed else "running"
        return (f"<QueryService {state}: {self._executor.workers} workers, "
                f"{len(self._sessions)} sessions, {self._requests} requests>")
