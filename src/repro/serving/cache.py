"""Thread-safe multi-tier query cache for the serving layer.

Exploratory OLAP traffic is dominated by repeated, near-identical queries:
REOLAP probes every candidate for non-emptiness, refinement menus re-issue
the current query with one clause changed, and concurrent analysts explore
the same dataset.  The cache exploits that repetition at three tiers:

* **ASTs** — parsed query objects keyed by query text, so a hot query
  string is tokenized and parsed once;
* **results** — SELECT/ASK/CONSTRUCT outcomes keyed by
  ``(query text, graph epoch, timeout class)``;
* **keywords** — full-text keyword resolutions keyed by
  ``(keyword, exact, graph epoch)``;
* **plans** — compiled physical plans for the unified operator pipeline
  (:mod:`repro.sparql.operators`) keyed by
  ``("where", where, flags, graph uid, epoch)``, plus fused aggregation
  plans (:mod:`repro.sparql.aggregator`) keyed by
  ``("aggregate", query, flags, graph uid, epoch)`` — each entry a
  ``(plan, decline_reason)`` pair, so non-qualifying shapes cache their
  *decline* and skip re-analysis too (the evaluator reads this tier
  directly through :attr:`Evaluator.plan_cache`).

Correctness hinges on the graph **epoch** (:attr:`repro.store.Graph.epoch`):
every mutation bumps it, the epoch is part of every result/keyword key, so
stale entries can never be served — they simply age out of the LRU ring.
Each tier is an :class:`LRUCache`: an ``OrderedDict`` under a lock with
optional TTL expiry, a size cap, and hit/miss/eviction statistics.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

__all__ = ["CacheStats", "LRUCache", "QueryCache", "MISS", "timeout_class"]

#: Sentinel distinguishing "not cached" from a cached ``None``/``False``.
MISS = object()


def timeout_class(timeout: float | None) -> str:
    """Bucket a timeout value into a cache-key class.

    Results computed under different deadlines are not interchangeable (a
    tight deadline may time out where a loose one succeeds), but keying by
    the raw float would fragment the cache under jittered deadlines.  The
    class keeps ``None`` distinct and rounds finite timeouts to the
    millisecond.
    """
    return "none" if timeout is None else f"{timeout:.3f}"


@dataclass
class CacheStats:
    """Counters for one cache tier; read them via :attr:`LRUCache.stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions,
                          self.expirations, self.puts)


class LRUCache:
    """A bounded, thread-safe LRU map with optional per-entry TTL.

    ``get`` returns :data:`MISS` on absence so that falsy values (``False``
    from ASK, empty result sets) are cacheable.  All operations take the
    internal lock, so one instance can serve many executor threads.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("cache ttl must be positive (or None)")
        self.maxsize = maxsize
        self.ttl = ttl
        self._clock = clock
        self._data: OrderedDict[Hashable, tuple[Any, float | None]] = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    def get(self, key: Hashable) -> Any:
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self._stats.misses += 1
                return MISS
            value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._data[key]
                self._stats.expirations += 1
                self._stats.misses += 1
                return MISS
            self._data.move_to_end(key)
            self._stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        expires_at = None if self.ttl is None else self._clock() + self.ttl
        with self._lock:
            self._stats.puts += 1
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = (value, expires_at)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._stats.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            return self._data.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key) is not MISS

    @property
    def stats(self) -> CacheStats:
        """A consistent point-in-time copy of the tier's counters."""
        with self._lock:
            return self._stats.snapshot()

    def __repr__(self) -> str:
        stats = self.stats
        return (f"<LRUCache {len(self)}/{self.maxsize} entries, "
                f"{stats.hits}h/{stats.misses}m>")


class QueryCache:
    """The endpoint-facing facade bundling the three tiers.

    Inject one into :class:`repro.store.Endpoint` (the ``cache=`` argument)
    or let :class:`repro.serving.QueryService` construct one.  A single
    instance may back several endpoints over the same graph; endpoints over
    *different* graphs must not share one (keys include the epoch but not
    the graph identity).
    """

    def __init__(
        self,
        max_asts: int = 512,
        max_results: int = 4096,
        max_keywords: int = 1024,
        max_plans: int = 512,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.asts = LRUCache(max_asts, ttl=None, clock=clock)
        self.results = LRUCache(max_results, ttl=ttl, clock=clock)
        self.keywords = LRUCache(max_keywords, ttl=ttl, clock=clock)
        # Plans are invalidated by their epoch component like results, but
        # never by TTL: a plan is pure compilation state, not data.
        self.plans = LRUCache(max_plans, ttl=None, clock=clock)

    # -- tier accessors ----------------------------------------------------

    def get_ast(self, text: str) -> Any:
        return self.asts.get(text)

    def put_ast(self, text: str, query: Any) -> None:
        self.asts.put(text, query)

    def result_key(self, text: str, version, timeout: float | None,
                   kind: str) -> tuple:
        """``version`` is the caller's invalidation tag — the endpoint
        passes ``(graph uid, epoch)`` so entries are scoped to one graph
        instance and one graph state."""
        return (text, version, timeout_class(timeout), kind)

    def get_result(self, key: tuple) -> Any:
        return self.results.get(key)

    def put_result(self, key: tuple, value: Any) -> None:
        self.results.put(key, value)

    def keyword_key(self, keyword: str, exact: bool, version) -> tuple:
        return (keyword, exact, version)

    def get_keyword(self, key: tuple) -> Any:
        return self.keywords.get(key)

    def put_keyword(self, key: tuple, value: Any) -> None:
        self.keywords.put(key, value)

    # -- maintenance -------------------------------------------------------

    def clear(self) -> None:
        self.asts.clear()
        self.results.clear()
        self.keywords.clear()
        self.plans.clear()

    @property
    def stats(self) -> dict[str, CacheStats]:
        return {
            "asts": self.asts.stats,
            "results": self.results.stats,
            "keywords": self.keywords.stats,
            "plans": self.plans.stats,
        }

    @property
    def hit_rate(self) -> float:
        """Aggregate hit rate across the result and keyword tiers.

        The AST and plan tiers are excluded: those hits still evaluate the
        query, so counting them would overstate how much work the cache is
        saving.
        """
        tiers = (self.results.stats, self.keywords.stats)
        lookups = sum(t.lookups for t in tiers)
        hits = sum(t.hits for t in tiers)
        return hits / lookups if lookups else 0.0

    def __repr__(self) -> str:
        return (f"<QueryCache asts={len(self.asts)} results={len(self.results)} "
                f"keywords={len(self.keywords)} hit_rate={self.hit_rate:.2f}>")
