"""Admission-controlled worker pool and read-write lock.

The serving layer runs queries on a bounded :class:`ServingExecutor`
rather than spawning unbounded threads: a fixed worker pool drains a
bounded queue, and submissions beyond the queue cap are rejected
immediately with :class:`~repro.errors.AdmissionError` (backpressure, the
thread-pool equivalent of HTTP 503).  Each request may carry a *deadline*;
when a worker finally picks the request up, the remaining budget is
composed with the caller's cooperative evaluation timeout (the evaluator's
:class:`~repro.sparql.eval._Deadline` stride checks), so time spent queued
counts against the request — a request that waited past its deadline fails
fast without touching the store.

:class:`RWLock` is the classic many-readers/one-writer lock the
:class:`~repro.serving.service.QueryService` uses to let concurrent
queries share the store while mutations get exclusive access.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import AdmissionError, RequestShedError, ServiceShutdownError

__all__ = ["ExecutorStats", "RWLock", "ServingExecutor"]


class RWLock:
    """A read-write lock: many concurrent readers, one exclusive writer.

    Writer-preferring: once a writer is waiting, new readers block, so
    mutations cannot starve under a steady query stream.  Not reentrant —
    a thread must not acquire the lock (either side) while holding it.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read_locked(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


@dataclass
class ExecutorStats:
    """Lifetime counters for one executor."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    deadline_expired: int = 0

    @property
    def in_flight(self) -> int:
        return self.submitted - self.completed - self.failed

    def snapshot(self) -> "ExecutorStats":
        return ExecutorStats(self.submitted, self.completed, self.failed,
                             self.rejected, self.deadline_expired)


class ServingExecutor:
    """A :class:`ThreadPoolExecutor` with admission control and deadlines.

    ``workers`` threads drain at most ``workers + max_pending`` admitted
    requests; further :meth:`submit` calls raise
    :class:`~repro.errors.AdmissionError` instead of queueing unbounded.
    """

    def __init__(self, workers: int = 4, max_pending: int | None = None,
                 name: str = "repro-serving"):
        if workers < 1:
            raise ValueError("executor needs at least one worker")
        if max_pending is None:
            max_pending = workers * 8
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.workers = workers
        self.max_pending = max_pending
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix=name)
        self._slots = threading.BoundedSemaphore(workers + max_pending)
        self._lock = threading.Lock()
        self._stats = ExecutorStats()
        self._shutdown = False

    # -- submission --------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        /,
        *args: Any,
        deadline: float | None = None,
        **kwargs: Any,
    ) -> Future:
        """Admit ``fn(*args, **kwargs)`` onto the pool, or reject.

        ``deadline`` is an absolute ``time.monotonic()`` instant.  When
        set, the wrapper re-checks it as the request leaves the queue and
        tightens any ``timeout=`` keyword to the remaining budget, so the
        store-level cooperative timeout and the serving deadline compose.
        """
        with self._lock:
            if self._shutdown:
                raise ServiceShutdownError("executor has been shut down")
        if not self._slots.acquire(blocking=False):
            with self._lock:
                self._stats.rejected += 1
            raise AdmissionError(
                f"serving queue full ({self.workers} workers, "
                f"{self.max_pending} pending slots); retry later"
            )

        def run() -> Any:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Load shedding: the request aged out in the queue, so
                    # it fails fast without ever touching the store.
                    with self._lock:
                        self._stats.deadline_expired += 1
                    raise RequestShedError(
                        "request deadline expired while queued; shed"
                    )
                timeout = kwargs.get("timeout")
                # A non-numeric timeout (None, or the endpoint's
                # DEFAULT_TIMEOUT sentinel) defers to the endpoint; the
                # request deadline still caps it from above.
                kwargs["timeout"] = (
                    min(timeout, remaining)
                    if isinstance(timeout, (int, float))
                    else remaining
                )
            return fn(*args, **kwargs)

        with self._lock:
            self._stats.submitted += 1
        try:
            future = self._pool.submit(run)
        except BaseException:
            self._slots.release()
            with self._lock:
                self._stats.submitted -= 1
            raise
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, future: Future) -> None:
        self._slots.release()
        with self._lock:
            if future.cancelled() or future.exception() is not None:
                self._stats.failed += 1
            else:
                self._stats.completed += 1

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop admitting work; optionally wait for in-flight requests."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "ServingExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    @property
    def stats(self) -> ExecutorStats:
        with self._lock:
            return self._stats.snapshot()

    def __repr__(self) -> str:
        stats = self.stats
        state = "shutdown" if self._shutdown else "running"
        return (f"<ServingExecutor {state}: {self.workers} workers, "
                f"{stats.in_flight} in flight, {stats.rejected} rejected>")
