"""Concurrent, cache-accelerated serving layer.

The paper's prototype serves one analyst against one endpoint; this
subsystem is the scaling substrate the ROADMAP's production north star
builds on.  It layers three pieces over the in-process store:

* :mod:`repro.serving.cache` — a thread-safe multi-tier LRU+TTL cache
  (parsed ASTs, query results, keyword resolutions) invalidated by the
  graph epoch counter;
* :mod:`repro.serving.executor` — a bounded worker pool with admission
  control, per-request deadlines, and a read-write lock;
* :mod:`repro.serving.service` — :class:`QueryService`, which multiplexes
  many concurrent exploration sessions over one shared store and exposes
  aggregate throughput/latency/hit-rate statistics.
"""

from .cache import MISS, CacheStats, LRUCache, QueryCache, timeout_class
from .executor import ExecutorStats, RWLock, ServingExecutor
from .service import QueryService, ServingStats

__all__ = [
    "CacheStats",
    "LRUCache",
    "MISS",
    "QueryCache",
    "timeout_class",
    "ExecutorStats",
    "RWLock",
    "ServingExecutor",
    "QueryService",
    "ServingStats",
]
