"""Workload generation for experiments and stress tests.

The paper's Figure 7 workload — "we randomly selected dimension members
from each dimension and combined them", ten inputs per size — is exposed
here as a reusable API, so downstream users can benchmark their own KGs
the same way.  Inputs are sampled from a :class:`StatisticalKG`'s member
registry (ground truth) or from a bootstrapped virtual graph's sample
members (when only an endpoint is available).
"""

from __future__ import annotations

import random
from typing import Iterator

from .core.virtual_graph import VirtualSchemaGraph
from .qb.cube import StatisticalKG

__all__ = ["example_tuples", "example_tuples_from_vgraph", "exploration_walk"]


def example_tuples(
    kg: StatisticalKG, size: int, count: int = 10, seed: int = 0
) -> list[tuple[str, ...]]:
    """Random example tuples of ``size`` labels from distinct dimensions."""
    rng = random.Random(seed)
    dimension_names = sorted({dim for dim, _level in kg.members})
    if size > len(dimension_names):
        raise ValueError(
            f"size {size} exceeds the {len(dimension_names)} available dimensions"
        )
    inputs: list[tuple[str, ...]] = []
    for _ in range(count):
        chosen = rng.sample(dimension_names, size)
        labels = []
        for dim in chosen:
            levels = sorted(level for d, level in kg.members if d == dim)
            level = levels[rng.randrange(len(levels))]
            members = kg.members[(dim, level)]
            labels.append(members[rng.randrange(len(members))].label)
        inputs.append(tuple(labels))
    return inputs


def example_tuples_from_vgraph(
    endpoint, vgraph: VirtualSchemaGraph, size: int, count: int = 10, seed: int = 0
) -> list[tuple[str, ...]]:
    """Example tuples sampled without ground truth, via the crawled schema.

    Uses the virtual graph's sample members and resolves their labels
    through the endpoint, so it works against any SPARQL endpoint, not
    just generated KGs.
    """
    from .core.labels import LabelResolver

    rng = random.Random(seed)
    resolver = LabelResolver(endpoint)
    dimensions = vgraph.dimension_predicates()
    if size > len(dimensions):
        raise ValueError(f"size {size} exceeds {len(dimensions)} dimensions")
    inputs: list[tuple[str, ...]] = []
    for _ in range(count):
        chosen = rng.sample(dimensions, size)
        labels = []
        for predicate in chosen:
            levels = vgraph.levels_of_dimension(predicate)
            level = levels[rng.randrange(len(levels))]
            member = level.sample_members[rng.randrange(len(level.sample_members))]
            labels.append(resolver.label(member))
        inputs.append(tuple(labels))
    return inputs


def exploration_walk(
    session, example: tuple[str, ...], kinds: tuple[str, ...], seed: int = 0
) -> Iterator[int]:
    """Drive a random exploration: one refinement of each kind in turn.

    Yields the result cardinality after each interaction.  Used by stress
    tests to exercise long interaction chains deterministically.
    """
    rng = random.Random(seed)
    session.synthesize(*example)
    results = session.choose(0)
    yield len(results)
    for kind in kinds:
        proposals = session.refinements(kind)
        if not proposals:
            continue
        chosen = proposals[rng.randrange(len(proposals))]
        results = session.apply(chosen, options_offered=len(proposals))
        yield len(results)
