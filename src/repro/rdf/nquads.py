"""N-Quads parser and serializer (triples + named-graph component).

The named-graph flavour of N-Triples: each statement may carry a fourth
term naming the graph it belongs to.  Used to persist and reload whole
:class:`~repro.store.dataset.Dataset` instances.
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator

from ..errors import RDFSyntaxError
from .ntriples import parse_term
from .terms import IRI
from .triple import Quad, Triple

__all__ = ["parse_nquads", "serialize_nquads"]


def parse_nquads(source: str | IO[str]) -> Iterator[Triple | Quad]:
    """Yield triples (default graph) and quads from an N-Quads document."""
    lines: Iterable[str]
    if isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = source
    for lineno, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        s, rest = parse_term(stripped, lineno)
        p, rest = parse_term(rest, lineno)
        if not isinstance(p, IRI):
            raise RDFSyntaxError("predicate must be an IRI", lineno)
        o, rest = parse_term(rest, lineno)
        graph: IRI | None = None
        if not rest.startswith("."):
            graph_term, rest = parse_term(rest, lineno)
            if not isinstance(graph_term, IRI):
                raise RDFSyntaxError("graph label must be an IRI", lineno)
            graph = graph_term
        if not rest.startswith("."):
            raise RDFSyntaxError("missing terminating '.'", lineno)
        trailing = rest[1:].strip()
        if trailing and not trailing.startswith("#"):
            raise RDFSyntaxError(f"unexpected content after '.': {trailing!r}", lineno)
        try:
            if graph is None:
                yield Triple(s, p, o)
            else:
                yield Quad(s, p, o, graph)
        except TypeError as exc:
            raise RDFSyntaxError(str(exc), lineno) from exc


def serialize_nquads(items: Iterable[Triple | Quad], out: IO[str] | None = None) -> str | None:
    """Serialize triples/quads; plain triples go to the default graph."""

    def line(item: Triple | Quad) -> str:
        if isinstance(item, Quad):
            return f"{item.s.n3()} {item.p.n3()} {item.o.n3()} {item.graph.n3()} .\n"
        return item.n3() + "\n"

    if out is None:
        return "".join(line(item) for item in items)
    for item in items:
        out.write(line(item))
    return None
