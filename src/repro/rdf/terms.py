"""RDF term model: IRIs, literals, blank nodes, and query variables.

This module implements the RDF 1.1 abstract syntax terms used throughout the
library.  Terms are immutable, hashable, and totally ordered (IRIs < blank
nodes < literals, then lexicographically), which lets them be used as
dictionary keys in the triple store indexes and sorted deterministically in
query results.

Literals carry an optional datatype IRI and language tag and expose a
:meth:`Literal.to_python` conversion for the XSD datatypes relevant to
statistical knowledge graphs (numerics, booleans, dates).
"""

from __future__ import annotations

import math
import re
from datetime import date, datetime
from decimal import Decimal, InvalidOperation
from typing import Any, Union

__all__ = [
    "Term",
    "IRI",
    "BNode",
    "Literal",
    "Variable",
    "Node",
    "XSD_NS",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_STRING",
    "XSD_BOOLEAN",
    "XSD_DATE",
    "XSD_DATETIME",
    "XSD_GYEAR",
    "literal_from_python",
]

XSD_NS = "http://www.w3.org/2001/XMLSchema#"

_SORT_RANK = {"IRI": 0, "BNode": 1, "Literal": 2, "Variable": 3}


class Term:
    """Common base class for all RDF terms and SPARQL variables."""

    __slots__ = ()

    def sort_key(self) -> tuple:
        """Key giving the canonical total order across term kinds."""
        raise NotImplementedError

    @property
    def is_literal(self) -> bool:
        return isinstance(self, Literal)

    @property
    def is_iri(self) -> bool:
        return isinstance(self, IRI)

    @property
    def is_bnode(self) -> bool:
        return isinstance(self, BNode)

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class IRI(Term):
    """An Internationalized Resource Identifier, e.g. nodes and predicates.

    >>> IRI("http://example.org/Germany").n3()
    '<http://example.org/Germany>'
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"IRI value must be str, got {type(value).__name__}")
        if not value:
            raise ValueError("IRI value must be non-empty")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("IRI", value)))

    def __setattr__(self, name: str, val: Any) -> None:
        raise AttributeError("IRI instances are immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        """Render in N-Triples / SPARQL surface syntax."""
        return f"<{self.value}>"

    def local_name(self) -> str:
        """Heuristic local part: text after the last ``#`` or ``/``."""
        for sep in ("#", "/"):
            if sep in self.value:
                tail = self.value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.value

    def sort_key(self) -> tuple:
        return (_SORT_RANK["IRI"], self.value)


class BNode(Term):
    """A blank node (existential placeholder) identified by a local label."""

    __slots__ = ("label", "_hash")

    _counter = 0

    def __init__(self, label: str | None = None):
        if label is None:
            BNode._counter += 1
            label = f"b{BNode._counter}"
        if not re.fullmatch(r"[A-Za-z0-9_.-]+", label):
            raise ValueError(f"invalid blank node label: {label!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash(("BNode", label)))

    def __setattr__(self, name: str, val: Any) -> None:
        raise AttributeError("BNode instances are immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BNode) and other.label == self.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BNode({self.label!r})"

    def n3(self) -> str:
        return f"_:{self.label}"

    def sort_key(self) -> tuple:
        return (_SORT_RANK["BNode"], self.label)


XSD_INTEGER = IRI(XSD_NS + "integer")
XSD_DECIMAL = IRI(XSD_NS + "decimal")
XSD_DOUBLE = IRI(XSD_NS + "double")
XSD_STRING = IRI(XSD_NS + "string")
XSD_BOOLEAN = IRI(XSD_NS + "boolean")
XSD_DATE = IRI(XSD_NS + "date")
XSD_DATETIME = IRI(XSD_NS + "dateTime")
XSD_GYEAR = IRI(XSD_NS + "gYear")

_NUMERIC_DATATYPES = frozenset(
    {
        XSD_INTEGER,
        XSD_DECIMAL,
        XSD_DOUBLE,
        IRI(XSD_NS + "float"),
        IRI(XSD_NS + "long"),
        IRI(XSD_NS + "int"),
        IRI(XSD_NS + "short"),
        IRI(XSD_NS + "byte"),
        IRI(XSD_NS + "nonNegativeInteger"),
        IRI(XSD_NS + "positiveInteger"),
        IRI(XSD_NS + "unsignedInt"),
        IRI(XSD_NS + "unsignedLong"),
    }
)

_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def _escape_literal(text: str) -> str:
    """N-Triples string escaping, incl. \\uXXXX for control characters.

    Raw control characters would break line-oriented serializations
    (several are line boundaries for ``str.splitlines``).
    """
    out = []
    for ch in text:
        if ch in _ESCAPES:
            out.append(_ESCAPES[ch])
        elif ord(ch) < 0x20 or 0x7F <= ord(ch) <= 0xA0 or ch in '\u2028\u2029':
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    return "".join(out)


class Literal(Term):
    """An RDF literal: a lexical form with optional datatype or language tag.

    ``Literal("403", datatype=XSD_INTEGER)`` models a numeric measure value;
    ``Literal("Germany", language="en")`` models a language-tagged label.
    Per RDF 1.1, a literal has *either* a language tag (implying
    ``rdf:langString``) or a datatype, never both.
    """

    __slots__ = ("lexical", "datatype", "language", "_hash")

    def __init__(
        self,
        lexical: str,
        datatype: IRI | None = None,
        language: str | None = None,
    ):
        if not isinstance(lexical, str):
            raise TypeError("literal lexical form must be str; use "
                            "literal_from_python() to convert Python values")
        if language is not None and datatype is not None:
            raise ValueError("a literal cannot have both a language tag and a datatype")
        if language is not None and not re.fullmatch(r"[A-Za-z]{1,8}(-[A-Za-z0-9]{1,8})*", language):
            raise ValueError(f"invalid language tag: {language!r}")
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language.lower() if language else None)
        object.__setattr__(self, "_hash", hash(("Literal", lexical, datatype, self.language)))

    def __setattr__(self, name: str, val: Any) -> None:
        raise AttributeError("Literal instances are immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.datatype == self.datatype
            and other.language == self.language
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        extra = ""
        if self.datatype is not None:
            extra = f", datatype={self.datatype.value!r}"
        elif self.language is not None:
            extra = f", language={self.language!r}"
        return f"Literal({self.lexical!r}{extra})"

    def __str__(self) -> str:
        return self.lexical

    def n3(self) -> str:
        body = f'"{_escape_literal(self.lexical)}"'
        if self.language is not None:
            return f"{body}@{self.language}"
        if self.datatype is not None and self.datatype != XSD_STRING:
            return f"{body}^^{self.datatype.n3()}"
        return body

    @property
    def is_numeric(self) -> bool:
        """True when the datatype is one of the XSD numeric types."""
        return self.datatype in _NUMERIC_DATATYPES

    def to_python(self) -> Any:
        """Convert to the closest native Python value.

        Unknown datatypes and plain strings come back as ``str``; malformed
        numeric lexical forms raise :class:`ValueError` rather than passing
        silently.
        """
        dt = self.datatype
        if dt is None or dt == XSD_STRING:
            return self.lexical
        if dt == XSD_BOOLEAN:
            if self.lexical in ("true", "1"):
                return True
            if self.lexical in ("false", "0"):
                return False
            raise ValueError(f"invalid xsd:boolean lexical form: {self.lexical!r}")
        if dt == XSD_INTEGER or dt.value.startswith(XSD_NS) and dt in _NUMERIC_DATATYPES:
            if dt == XSD_DOUBLE or dt.value.endswith(("float", "double")):
                return float(self.lexical)
            if dt == XSD_DECIMAL:
                try:
                    return Decimal(self.lexical)
                except InvalidOperation as exc:
                    raise ValueError(f"invalid xsd:decimal: {self.lexical!r}") from exc
            return int(self.lexical)
        if dt == XSD_DATE:
            return date.fromisoformat(self.lexical)
        if dt == XSD_DATETIME:
            return datetime.fromisoformat(self.lexical)
        if dt == XSD_GYEAR:
            return int(self.lexical)
        return self.lexical

    def numeric_value(self) -> float:
        """The literal as a float, for aggregation and comparisons.

        Raises :class:`ValueError` when the literal is not numeric.
        """
        if not self.is_numeric:
            raise ValueError(f"literal {self.n3()} is not numeric")
        value = float(self.lexical)
        if math.isnan(value):
            raise ValueError(f"literal {self.n3()} is NaN")
        return value

    def sort_key(self) -> tuple:
        if self.is_numeric:
            try:
                return (_SORT_RANK["Literal"], 0, float(self.lexical), self.lexical)
            except ValueError:
                pass
        return (_SORT_RANK["Literal"], 1, self.lexical,
                self.datatype.value if self.datatype else (self.language or ""))


class Variable(Term):
    """A SPARQL query variable, e.g. ``?obs``.  Never stored in a graph."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if name.startswith(("?", "$")):
            name = name[1:]
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
            raise ValueError(f"invalid variable name: {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Variable", name)))

    def __setattr__(self, name: str, val: Any) -> None:
        raise AttributeError("Variable instances are immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def n3(self) -> str:
        return f"?{self.name}"

    def sort_key(self) -> tuple:
        return (_SORT_RANK["Variable"], self.name)


#: Terms that may appear in a stored triple (no variables).
Node = Union[IRI, BNode, Literal]


def literal_from_python(value: Any) -> Literal:
    """Build a typed :class:`Literal` from a native Python value.

    >>> literal_from_python(403).n3()
    '"403"^^<http://www.w3.org/2001/XMLSchema#integer>'
    """
    if isinstance(value, Literal):
        return value
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"cannot store non-finite float {value!r} as a literal")
        return Literal(repr(value), datatype=XSD_DOUBLE)
    if isinstance(value, Decimal):
        return Literal(str(value), datatype=XSD_DECIMAL)
    if isinstance(value, datetime):
        return Literal(value.isoformat(), datatype=XSD_DATETIME)
    if isinstance(value, date):
        return Literal(value.isoformat(), datatype=XSD_DATE)
    if isinstance(value, str):
        return Literal(value)
    raise TypeError(f"cannot convert {type(value).__name__} to an RDF literal")
