"""Namespace helper and the standard vocabularies used by the library.

A :class:`Namespace` builds IRIs by attribute access or indexing::

    >>> EX = Namespace("http://example.org/")
    >>> EX.Germany
    IRI('http://example.org/Germany')
    >>> EX["Country of Origin"]
    IRI('http://example.org/Country%20of%20Origin')

The module also predefines the vocabularies a statistical knowledge graph
relies on: RDF/RDFS core terms, XSD datatypes, SKOS (used for hierarchy
links in many published cubes), and the W3C RDF Data Cube (QB) vocabulary
that identifies observations, dimensions, and measures.
"""

from __future__ import annotations

from urllib.parse import quote

from .terms import IRI

__all__ = ["Namespace", "RDF", "RDFS", "XSD", "SKOS", "QB", "QB4O"]


class Namespace:
    """A factory for IRIs sharing a common prefix."""

    __slots__ = ("prefix",)

    def __init__(self, prefix: str):
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        object.__setattr__(self, "prefix", prefix)

    def __setattr__(self, name, value):
        raise AttributeError("Namespace instances are immutable")

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return IRI(self.prefix + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self.prefix + quote(name, safe=""))

    def term(self, name: str) -> IRI:
        """Explicit method form of attribute access (for reserved words)."""
        return IRI(self.prefix + name)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self.prefix)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and other.prefix == self.prefix

    def __hash__(self) -> int:
        return hash(("Namespace", self.prefix))

    def __repr__(self) -> str:
        return f"Namespace({self.prefix!r})"

    def __str__(self) -> str:
        return self.prefix


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
SKOS = Namespace("http://www.w3.org/2004/02/skos/core#")

#: W3C RDF Data Cube vocabulary: the standard way to describe
#: multi-dimensional statistical data in RDF (Cyganiak et al., 2014).
QB = Namespace("http://purl.org/linked-data/cube#")

#: QB4OLAP extension (Etcheverry & Vaisman): dimension hierarchies & levels.
QB4O = Namespace("http://purl.org/qb4olap/cubes#")
