"""N-Triples parser and serializer.

N-Triples is the line-oriented RDF serialization: one triple per line,
terms written in full.  It is the interchange format the library uses for
loading fixture data and dumping graphs, mirroring how the paper's system
loads datasets into the triple store before bootstrap.
"""

from __future__ import annotations

import re
from typing import IO, Iterable, Iterator

from ..errors import RDFSyntaxError
from .terms import IRI, BNode, Literal, Node
from .triple import Triple

__all__ = ["parse_ntriples", "serialize_ntriples", "parse_term"]

_IRI_RE = re.compile(r"<([^<>\"{}|^`\\\x00-\x20]*)>")
_BNODE_RE = re.compile(r"_:([A-Za-z0-9_.-]+)")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"'
    r"(?:\^\^<([^<>\s]*)>|@([A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*))?"
)

_UNESCAPES = {
    "\\\\": "\\",
    '\\"': '"',
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
}
_UNESCAPE_RE = re.compile(r"\\u[0-9A-Fa-f]{4}|\\U[0-9A-Fa-f]{8}|\\.")


def _unescape(text: str) -> str:
    def repl(match: re.Match) -> str:
        seq = match.group(0)
        if seq in _UNESCAPES:
            return _UNESCAPES[seq]
        if seq.startswith(("\\u", "\\U")):
            return chr(int(seq[2:], 16))
        raise RDFSyntaxError(f"unknown escape sequence {seq!r}")

    return _UNESCAPE_RE.sub(repl, text)


def parse_term(text: str, line: int | None = None) -> tuple[Node, str]:
    """Parse one term from the front of ``text``.

    Returns the term and the remaining (left-stripped) text.
    """
    text = text.lstrip()
    if text.startswith("<"):
        match = _IRI_RE.match(text)
        if not match:
            raise RDFSyntaxError(f"malformed IRI near {text[:40]!r}", line)
        return IRI(match.group(1)), text[match.end():].lstrip()
    if text.startswith("_:"):
        match = _BNODE_RE.match(text)
        if not match:
            raise RDFSyntaxError(f"malformed blank node near {text[:40]!r}", line)
        return BNode(match.group(1)), text[match.end():].lstrip()
    if text.startswith('"'):
        match = _LITERAL_RE.match(text)
        if not match:
            raise RDFSyntaxError(f"malformed literal near {text[:40]!r}", line)
        lexical = _unescape(match.group(1))
        datatype = IRI(match.group(2)) if match.group(2) else None
        language = match.group(3)
        return Literal(lexical, datatype=datatype, language=language), text[match.end():].lstrip()
    raise RDFSyntaxError(f"unexpected token near {text[:40]!r}", line)


def parse_ntriples(source: str | IO[str]) -> Iterator[Triple]:
    """Yield triples from an N-Triples document (string or open file)."""
    lines: Iterable[str]
    if isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = source
    for lineno, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        s, rest = parse_term(stripped, lineno)
        p, rest = parse_term(rest, lineno)
        if not isinstance(p, IRI):
            raise RDFSyntaxError("predicate must be an IRI", lineno)
        o, rest = parse_term(rest, lineno)
        if not rest.startswith("."):
            raise RDFSyntaxError("missing terminating '.'", lineno)
        trailing = rest[1:].strip()
        if trailing and not trailing.startswith("#"):
            raise RDFSyntaxError(f"unexpected content after '.': {trailing!r}", lineno)
        try:
            yield Triple(s, p, o)
        except TypeError as exc:
            raise RDFSyntaxError(str(exc), lineno) from exc


def serialize_ntriples(triples: Iterable[Triple], out: IO[str] | None = None) -> str | None:
    """Serialize ``triples`` in N-Triples format.

    When ``out`` is given, lines are written to it and ``None`` is returned;
    otherwise the document is returned as one string.
    """
    if out is None:
        return "".join(t.n3() + "\n" for t in triples)
    for t in triples:
        out.write(t.n3() + "\n")
    return None
