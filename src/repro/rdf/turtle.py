"""Turtle subset parser and serializer.

Supports the features actually used by published statistical KGs and our
fixtures: ``@prefix`` declarations, prefixed names, the ``a`` keyword,
predicate lists (``;``), object lists (``,``), blank node labels, and
numeric / boolean / string literals (with datatype and language tags).
Collections and nested anonymous blank nodes are intentionally out of
scope — fixtures can always fall back to N-Triples.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from ..errors import RDFSyntaxError
from .namespace import RDF
from .terms import (
    IRI,
    BNode,
    Literal,
    Node,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from .triple import Triple

__all__ = ["parse_turtle", "serialize_turtle"]

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<literal>"(?:[^"\\]|\\.)*"(?:\^\^<[^<>\s]*>|\^\^[A-Za-z][\w-]*:[\w.-]*|@[A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*)?)
  | (?P<prefix_decl>@prefix|@base|PREFIX|BASE)
  | (?P<bnode>_:[A-Za-z0-9_.-]+)
  | (?P<double>[+-]?(?:\d+\.\d*|\.\d+)[eE][+-]?\d+|[+-]?\d+[eE][+-]?\d+)
  | (?P<decimal>[+-]?\d*\.\d+)
  | (?P<integer>[+-]?\d+)
  | (?P<boolean>\btrue\b|\bfalse\b)
  | (?P<a>\ba\b)
  | (?P<pname>[A-Za-z][\w-]*:[\w.%-]*|:[\w.%-]*)
  | (?P<punct>[;,.\[\]])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_LIT_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"(?:\^\^(<[^<>\s]*>|[A-Za-z][\w-]*:[\w.-]*)|@([A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*))?'
)

_UNESCAPES = {"\\\\": "\\", '\\"': '"', "\\n": "\n", "\\r": "\r", "\\t": "\t"}


def _tokenize(text: str) -> Iterator[tuple[str, str, int]]:
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise RDFSyntaxError(f"unexpected character {text[pos]!r}", line)
        kind = match.lastgroup
        value = match.group(0)
        line += value.count("\n")
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        yield kind, value, line


class _TurtleParser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.tokens = list(_tokenize(text))
        self.index = 0
        self.prefixes: dict[str, str] = {}
        self.base = ""

    def _peek(self) -> tuple[str, str, int] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> tuple[str, str, int]:
        token = self._peek()
        if token is None:
            raise RDFSyntaxError("unexpected end of input")
        self.index += 1
        return token

    def _expect_punct(self, char: str) -> None:
        kind, value, line = self._next()
        if kind != "punct" or value != char:
            raise RDFSyntaxError(f"expected {char!r}, got {value!r}", line)

    def _resolve_pname(self, pname: str, line: int) -> IRI:
        prefix, _, local = pname.partition(":")
        if prefix not in self.prefixes:
            raise RDFSyntaxError(f"undeclared prefix {prefix!r}", line)
        return IRI(self.prefixes[prefix] + local)

    def _parse_literal_token(self, value: str, line: int) -> Literal:
        match = _LIT_RE.fullmatch(value)
        if not match:
            raise RDFSyntaxError(f"malformed literal {value!r}", line)
        lexical = re.sub(r"\\.", lambda m: _UNESCAPES.get(m.group(0), m.group(0)), match.group(1))
        dt_text, language = match.group(2), match.group(3)
        datatype = None
        if dt_text:
            if dt_text.startswith("<"):
                datatype = IRI(dt_text[1:-1])
            else:
                datatype = self._resolve_pname(dt_text, line)
        return Literal(lexical, datatype=datatype, language=language)

    def _parse_term(self) -> Node:
        kind, value, line = self._next()
        if kind == "iri":
            return IRI(self.base + value[1:-1] if self.base and not value[1:-1].startswith(("http", "urn:")) else value[1:-1])
        if kind == "pname":
            return self._resolve_pname(value, line)
        if kind == "bnode":
            return BNode(value[2:])
        if kind == "literal":
            return self._parse_literal_token(value, line)
        if kind == "integer":
            return Literal(value, datatype=XSD_INTEGER)
        if kind == "decimal":
            return Literal(value, datatype=XSD_DECIMAL)
        if kind == "double":
            return Literal(value, datatype=XSD_DOUBLE)
        if kind == "boolean":
            return Literal(value, datatype=XSD_BOOLEAN)
        if kind == "a":
            return RDF.type
        raise RDFSyntaxError(f"unexpected token {value!r}", line)

    def _parse_directive(self, keyword: str) -> None:
        if keyword.lower().lstrip("@") == "prefix":
            kind, value, line = self._next()
            if kind != "pname" or not value.endswith(":"):
                raise RDFSyntaxError(f"expected prefix name, got {value!r}", line)
            prefix = value[:-1]
            kind, iri_text, line = self._next()
            if kind != "iri":
                raise RDFSyntaxError(f"expected IRI, got {iri_text!r}", line)
            self.prefixes[prefix] = iri_text[1:-1]
        else:  # @base / BASE
            kind, iri_text, line = self._next()
            if kind != "iri":
                raise RDFSyntaxError(f"expected IRI, got {iri_text!r}", line)
            self.base = iri_text[1:-1]
        if keyword.startswith("@"):
            self._expect_punct(".")

    def parse(self) -> Iterator[Triple]:
        while self._peek() is not None:
            kind, value, line = self._peek()
            if kind == "prefix_decl":
                self._next()
                self._parse_directive(value)
                continue
            subject = self._parse_term()
            if isinstance(subject, Literal):
                raise RDFSyntaxError("literal cannot be a subject", line)
            while True:
                predicate = self._parse_term()
                if not isinstance(predicate, IRI):
                    raise RDFSyntaxError(f"predicate must be an IRI, got {predicate!r}", line)
                while True:
                    obj = self._parse_term()
                    yield Triple(subject, predicate, obj)
                    nxt = self._peek()
                    if nxt and nxt[0] == "punct" and nxt[1] == ",":
                        self._next()
                        continue
                    break
                nxt = self._peek()
                if nxt and nxt[0] == "punct" and nxt[1] == ";":
                    self._next()
                    # allow trailing ';' before '.'
                    nxt = self._peek()
                    if nxt and nxt[0] == "punct" and nxt[1] == ".":
                        break
                    continue
                break
            self._expect_punct(".")


def parse_turtle(text: str) -> Iterator[Triple]:
    """Yield triples from a Turtle document (subset, see module docstring)."""
    return _TurtleParser(text).parse()


def serialize_turtle(triples: Iterable[Triple], prefixes: dict[str, str] | None = None) -> str:
    """Serialize triples as Turtle, grouping by subject and predicate."""
    prefixes = prefixes or {}
    reverse = sorted(prefixes.items(), key=lambda kv: -len(kv[1]))

    def shorten(node: Node) -> str:
        if isinstance(node, IRI):
            if node == RDF.type:
                return "a"
            for prefix, base in reverse:
                if node.value.startswith(base):
                    local = node.value[len(base):]
                    if re.fullmatch(r"[\w.-]*", local):
                        return f"{prefix}:{local}"
        return node.n3()

    by_subject: dict[Node, dict[IRI, list[Node]]] = {}
    for t in triples:
        by_subject.setdefault(t.s, {}).setdefault(t.p, []).append(t.o)

    lines = [f"@prefix {prefix}: <{base}> ." for prefix, base in sorted(prefixes.items())]
    if lines:
        lines.append("")
    for subject in sorted(by_subject, key=lambda n: n.sort_key()):
        pred_parts = []
        for predicate in sorted(by_subject[subject], key=lambda n: n.sort_key()):
            objects = ", ".join(
                shorten(o) for o in sorted(by_subject[subject][predicate], key=lambda n: n.sort_key())
            )
            pred_parts.append(f"{shorten(predicate)} {objects}")
        lines.append(f"{shorten(subject)} " + " ;\n    ".join(pred_parts) + " .")
    return "\n".join(lines) + "\n"
