"""Triple and quad containers.

A :class:`Triple` is the unit of storage in an RDF graph; a :class:`Quad`
extends it with the IRI of the named graph it belongs to.  Both validate the
RDF positional constraints at construction time (literals only in object
position, predicates are IRIs) so malformed data fails fast, before it can
corrupt a store index.
"""

from __future__ import annotations

from typing import Iterator

from .terms import IRI, BNode, Literal, Node, Term

__all__ = ["Triple", "Quad"]


class Triple:
    """An RDF statement ``<subject predicate object>``."""

    __slots__ = ("s", "p", "o", "_hash")

    def __init__(self, s: Node, p: IRI, o: Node):
        if not isinstance(s, (IRI, BNode)):
            raise TypeError(f"triple subject must be IRI or BNode, got {s!r}")
        if not isinstance(p, IRI):
            raise TypeError(f"triple predicate must be IRI, got {p!r}")
        if not isinstance(o, (IRI, BNode, Literal)):
            raise TypeError(f"triple object must be IRI, BNode or Literal, got {o!r}")
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "p", p)
        object.__setattr__(self, "o", o)
        object.__setattr__(self, "_hash", hash((s, p, o)))

    def __setattr__(self, name, value):
        raise AttributeError("Triple instances are immutable")

    def __iter__(self) -> Iterator[Node]:
        yield self.s
        yield self.p
        yield self.o

    def __getitem__(self, index: int) -> Node:
        return (self.s, self.p, self.o)[index]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Triple)
            and other.s == self.s
            and other.p == self.p
            and other.o == self.o
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Triple({self.s!r}, {self.p!r}, {self.o!r})"

    def __lt__(self, other: "Triple") -> bool:
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        return (self.s.sort_key(), self.p.sort_key(), self.o.sort_key())

    def n3(self) -> str:
        """Serialize as one N-Triples statement (without trailing newline)."""
        return f"{self.s.n3()} {self.p.n3()} {self.o.n3()} ."


class Quad(Triple):
    """A triple plus the named graph it belongs to."""

    __slots__ = ("graph",)

    def __init__(self, s: Node, p: IRI, o: Node, graph: IRI):
        if not isinstance(graph, IRI):
            raise TypeError(f"quad graph must be IRI, got {graph!r}")
        super().__init__(s, p, o)
        object.__setattr__(self, "graph", graph)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Quad)
            and super().__eq__(other)
            and other.graph == self.graph
        )

    def __hash__(self) -> int:
        return hash((self._hash, self.graph))

    def __repr__(self) -> str:
        return f"Quad({self.s!r}, {self.p!r}, {self.o!r}, {self.graph!r})"

    def triple(self) -> Triple:
        """The graph-less projection of this quad."""
        return Triple(self.s, self.p, self.o)
