"""RDF data model: terms, triples, namespaces, and serializations.

This subpackage is the from-scratch substrate replacing ``rdflib`` (not
available in this environment): an RDF 1.1 term model, triple/quad
containers, namespace helpers with the standard vocabularies (RDF, RDFS,
XSD, SKOS, QB, QB4OLAP), and N-Triples / Turtle parsers and serializers.
"""

from .namespace import QB, QB4O, RDF, RDFS, SKOS, XSD, Namespace
from .nquads import parse_nquads, serialize_nquads
from .ntriples import parse_ntriples, serialize_ntriples
from .terms import (
    IRI,
    BNode,
    Literal,
    Node,
    Term,
    Variable,
    XSD_BOOLEAN,
    XSD_DATE,
    XSD_DATETIME,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_GYEAR,
    XSD_INTEGER,
    XSD_STRING,
    literal_from_python,
)
from .triple import Quad, Triple
from .turtle import parse_turtle, serialize_turtle

__all__ = [
    "IRI",
    "BNode",
    "Literal",
    "Variable",
    "Term",
    "Node",
    "Triple",
    "Quad",
    "Namespace",
    "RDF",
    "RDFS",
    "XSD",
    "SKOS",
    "QB",
    "QB4O",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_STRING",
    "XSD_BOOLEAN",
    "XSD_DATE",
    "XSD_DATETIME",
    "XSD_GYEAR",
    "literal_from_python",
    "parse_ntriples",
    "serialize_ntriples",
    "parse_nquads",
    "serialize_nquads",
    "parse_turtle",
    "serialize_turtle",
]
