"""Setup shim enabling legacy editable installs (`pip install -e .`).

The offline environment ships setuptools without the `wheel` package, so
PEP 660 editable wheels cannot be built; this file lets pip fall back to
`setup.py develop`.  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
