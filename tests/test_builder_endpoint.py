"""Unit tests for the query builder and the endpoint facade."""

import pytest

from repro.errors import QueryTimeoutError
from repro.rdf import IRI, Literal, Triple, Variable, literal_from_python
from repro.sparql import SelectBuilder, agg, parse_query, path, var
from repro.store import Endpoint, Graph, TextIndex

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


@pytest.fixture
def graph():
    g = Graph()
    for index in range(6):
        g.add(Triple(iri(f"obs{index}"), iri("dim"), iri(f"m{index % 2}")))
        g.add(Triple(iri(f"obs{index}"), iri("val"), literal_from_python(index * 10)))
    g.add(Triple(iri("m0"), iri("label"), Literal("Member Zero")))
    g.add(Triple(iri("m1"), iri("label"), Literal("Member One")))
    return g


class TestSelectBuilder:
    def test_basic_query(self, graph):
        q = (SelectBuilder()
             .select(var("m"))
             .where(var("o"), iri("dim"), var("m"))
             .distinct()
             .build())
        rs = Endpoint(graph).select(q)
        assert len(rs) == 2

    def test_aggregate_with_group_by(self, graph):
        q = (SelectBuilder()
             .select(var("m"))
             .select_agg("SUM", var("v"), var("total"))
             .where(var("o"), iri("dim"), var("m"))
             .where(var("o"), iri("val"), var("v"))
             .group_by(var("m"))
             .order_by(var("total"), ascending=False)
             .build())
        rs = Endpoint(graph).select(q)
        totals = [row[1].to_python() for row in rs]
        assert totals == sorted(totals, reverse=True)

    def test_where_path(self, graph):
        q = (SelectBuilder()
             .select(var("l"))
             .where_path(var("o"), [iri("dim"), iri("label")], var("l"))
             .distinct()
             .build())
        rs = Endpoint(graph).select(q)
        assert {row[0].lexical for row in rs} == {"Member Zero", "Member One"}

    def test_filters(self, graph):
        q = (SelectBuilder()
             .select(var("o"))
             .where(var("o"), iri("val"), var("v"))
             .filter_range(var("v"), low=20, high=40)
             .build())
        rs = Endpoint(graph).select(q)
        assert len(rs) == 3

    def test_filter_range_exclusive(self, graph):
        q = (SelectBuilder()
             .select(var("o"))
             .where(var("o"), iri("val"), var("v"))
             .filter_range(var("v"), low=20, high=40,
                           low_inclusive=False, high_inclusive=False)
             .build())
        assert len(Endpoint(graph).select(q)) == 1

    def test_filter_range_requires_bound(self):
        with pytest.raises(ValueError):
            SelectBuilder().filter_range(var("v"))

    def test_filter_in_and_equals(self, graph):
        q = (SelectBuilder()
             .select(var("o"))
             .where(var("o"), iri("dim"), var("m"))
             .filter_in(var("m"), [iri("m0")])
             .build())
        assert len(Endpoint(graph).select(q)) == 3
        q2 = (SelectBuilder()
              .select(var("o"))
              .where(var("o"), iri("val"), var("v"))
              .filter_equals(var("v"), 30)
              .build())
        assert len(Endpoint(graph).select(q2)) == 1

    def test_values(self, graph):
        q = (SelectBuilder()
             .select(var("o"))
             .values([var("m")], [[iri("m1")]])
             .where(var("o"), iri("dim"), var("m"))
             .build())
        assert len(Endpoint(graph).select(q)) == 3

    def test_limit_offset_validation(self):
        with pytest.raises(ValueError):
            SelectBuilder().limit(-1)
        with pytest.raises(ValueError):
            SelectBuilder().offset(-1)

    def test_built_query_roundtrips(self, graph):
        q = (SelectBuilder()
             .select(var("m"))
             .select_agg("AVG", var("v"), var("a"), distinct=True)
             .where(var("o"), iri("dim"), var("m"))
             .where(var("o"), iri("val"), var("v"))
             .group_by(var("m"))
             .limit(5)
             .build())
        text = q.to_sparql()
        assert parse_query(text).to_sparql() == text

    def test_path_helper(self):
        assert path(iri("a")) == iri("a")
        two = path(iri("a"), iri("b"))
        assert two.to_sparql() == f"<{EX}a> / <{EX}b>"
        with pytest.raises(ValueError):
            path()

    def test_agg_helper(self):
        assert agg("COUNT").to_sparql() == "COUNT(*)"
        assert agg("sum", var("v")).to_sparql() == "SUM(?v)"


class TestEndpoint:
    def test_query_text_dispatch(self, graph):
        endpoint = Endpoint(graph)
        rs = endpoint.query(f"SELECT ?o WHERE {{ ?o <{EX}dim> <{EX}m0> }}")
        assert len(rs) == 3
        assert endpoint.query(f"ASK {{ ?o <{EX}dim> <{EX}m0> }}") is True

    def test_stats_counters(self, graph):
        endpoint = Endpoint(graph)
        endpoint.query(f"SELECT ?o WHERE {{ ?o <{EX}dim> ?m }}")
        endpoint.query(f"ASK {{ ?o <{EX}dim> ?m }}")
        endpoint.resolve_keyword("Member Zero")
        assert endpoint.stats.select_queries == 1
        assert endpoint.stats.ask_queries == 1
        assert endpoint.stats.keyword_lookups == 1
        assert endpoint.stats.total_queries == 2
        endpoint.stats.reset()
        assert endpoint.stats.total_queries == 0

    def test_default_timeout_applies(self, graph):
        endpoint = Endpoint(graph, default_timeout=-1.0)
        with pytest.raises(QueryTimeoutError):
            endpoint.select(f"SELECT ?o ?p ?x WHERE {{ ?o ?p ?x }}")
        assert endpoint.stats.timeouts == 1

    def test_per_call_timeout_overrides(self, graph):
        endpoint = Endpoint(graph, default_timeout=-1.0)
        rs = endpoint.select(f"SELECT ?o WHERE {{ ?o <{EX}dim> ?m }}", timeout=30)
        assert len(rs) == 6

    def test_is_non_empty(self, graph):
        endpoint = Endpoint(graph)
        q = parse_query(
            f"SELECT ?m (SUM(?v) AS ?t) WHERE {{ ?o <{EX}dim> ?m . "
            f"?o <{EX}val> ?v }} GROUP BY ?m"
        )
        assert endpoint.is_non_empty(q)
        empty = parse_query(
            f"SELECT ?m WHERE {{ ?o <{EX}dim> <{EX}nothere> . ?o <{EX}dim> ?m }}"
        )
        assert not endpoint.is_non_empty(empty)

    def test_is_non_empty_respects_having(self, graph):
        endpoint = Endpoint(graph)
        q = parse_query(
            f"SELECT ?m (SUM(?v) AS ?t) WHERE {{ ?o <{EX}dim> ?m . "
            f"?o <{EX}val> ?v }} GROUP BY ?m HAVING (SUM(?v) > 100000)"
        )
        assert not endpoint.is_non_empty(q)

    def test_refresh_text_index(self, graph):
        endpoint = Endpoint(graph)
        assert endpoint.resolve_keyword("Member Zero")
        graph.add(Triple(iri("m2"), iri("label"), Literal("Member Two")))
        assert not endpoint.resolve_keyword("Member Two")  # stale index
        endpoint.refresh_text_index()
        assert endpoint.resolve_keyword("Member Two")

    def test_injected_text_index(self, graph):
        index = TextIndex.from_graph(graph)
        endpoint = Endpoint(graph, text_index=index)
        assert endpoint.text_index is index
