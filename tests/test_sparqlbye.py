"""Tests for the SPARQLByE baseline and its contrast with REOLAP (Fig. 10)."""

import pytest

from repro.baselines import SPARQLByE
from repro.core import reolap
from repro.qb import MEMBER_OF


class TestSPARQLByE:
    def test_recognizes_level_memberships(self, mini_endpoint):
        result = SPARQLByE(mini_endpoint).reverse_engineer(("Europe", "2014"))
        assert result.query is not None
        assert len(result.matched_entities) == 2
        predicates = {p.p for p in result.query.where.triple_patterns()}
        assert MEMBER_OF in predicates

    def test_no_aggregation_ever(self, mini_endpoint):
        result = SPARQLByE(mini_endpoint).reverse_engineer(("Germany", "2014"))
        assert not result.has_aggregation

    def test_no_observation_join(self, mini_endpoint):
        """SPARQLByE never connects examples to observations (>= 2 hops)."""
        result = SPARQLByE(mini_endpoint).reverse_engineer(("Germany", "2014"))
        assert not result.mentions_observations

    def test_query_is_executable(self, mini_endpoint):
        result = SPARQLByE(mini_endpoint).reverse_engineer(("Germany",))
        rows = mini_endpoint.select(result.query)
        assert len(rows) > 0

    def test_unmatched_examples_yield_none(self, mini_endpoint):
        result = SPARQLByE(mini_endpoint).reverse_engineer(("Atlantis",))
        assert result.query is None
        assert result.matched_entities == ()

    def test_observation_example_returns_empty(self, mini_endpoint, mini_kg):
        """Fig. 10 discussion: an observation example yields nothing."""
        # Observation IRIs have no label; probe with a literal attached to
        # an observation instead (none exist in the mini cube), so use the
        # IRI's nonexistent label: resolves to nothing.
        result = SPARQLByE(mini_endpoint).reverse_engineer(("obs/0",))
        assert result.query is None


class TestContrastWithREOLAP(object):
    """The Section 7.2 comparison: same input, different problems solved."""

    def test_reolap_aggregates_where_sparqlbye_does_not(
        self, mini_endpoint, mini_vgraph
    ):
        example = ("Europe", "2014")
        baseline = SPARQLByE(mini_endpoint).reverse_engineer(example)
        queries = reolap(mini_endpoint, mini_vgraph, example)
        assert not baseline.has_aggregation
        assert not baseline.mentions_observations
        assert queries
        for query in queries:
            select = query.to_select()
            assert select.group_by
            assert select.is_aggregate_query
            # REOLAP anchors observations explicitly.
            objects = {p.o for p in select.where.triple_patterns()}
            from repro.qb import OBSERVATION_CLASS

            assert OBSERVATION_CLASS in objects
