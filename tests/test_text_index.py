"""Unit tests for the full-text keyword index."""

import pytest

from repro.rdf import IRI, Literal, Triple
from repro.store import Graph, TextIndex, tokenize

EX = "http://example.org/"
LABEL = IRI(EX + "label")


@pytest.fixture
def graph():
    g = Graph()
    rows = [
        ("germany", "Germany"),
        ("germany", "Bundesrepublik Deutschland"),
        ("france", "France"),
        ("origin", "Country of Origin"),
        ("dest", "Country of Destination"),
        ("y2014", "2014"),
    ]
    for name, text in rows:
        g.add(Triple(IRI(EX + name), LABEL, Literal(text)))
    return g


@pytest.fixture
def index(graph):
    return TextIndex.from_graph(graph)


class TestTokenize:
    def test_basic(self):
        assert tokenize("Country of Origin") == ["country", "of", "origin"]

    def test_punctuation_and_numbers(self):
        assert tokenize("Oct-2014 (est.)") == ["oct", "2014", "est"]

    def test_empty(self):
        assert tokenize("...") == []


class TestTextIndex:
    def test_len_counts_distinct_literals(self, index):
        assert len(index) == 6

    def test_exact_search_case_insensitive(self, index):
        assert index.search_exact("germany") == {Literal("Germany")}
        assert index.search_exact("GERMANY") == {Literal("Germany")}

    def test_exact_search_multiword(self, index):
        assert index.search_exact("country of origin") == {Literal("Country of Origin")}

    def test_token_search_conjunctive(self, index):
        hits = index.search_tokens("country")
        assert hits == {Literal("Country of Origin"), Literal("Country of Destination")}
        assert index.search_tokens("country origin") == {Literal("Country of Origin")}

    def test_token_search_no_hits(self, index):
        assert index.search_tokens("atlantis") == set()
        assert index.search_tokens("") == set()

    def test_search_prefers_exact(self, index):
        # "France" matches exactly; token fallback not used.
        assert index.search("France") == {Literal("France")}

    def test_search_falls_back_to_tokens(self, index):
        assert index.search("Destination") == {Literal("Country of Destination")}

    def test_numeric_keyword(self, index):
        assert index.search("2014") == {Literal("2014")}

    def test_prefix_search(self, index):
        hits = index.search_prefix("deut")
        assert Literal("Bundesrepublik Deutschland") in hits

    def test_occurrences(self, index):
        occ = index.occurrences(Literal("Germany"))
        assert occ == {(IRI(EX + "germany"), LABEL)}

    def test_subjects_matching_is_deterministic(self, index):
        first = list(index.subjects_matching("country"))
        second = list(index.subjects_matching("country"))
        assert first == second
        subjects = {s for s, _, _ in first}
        assert subjects == {IRI(EX + "origin"), IRI(EX + "dest")}

    def test_scan_search_agrees_with_index(self, graph, index):
        for keyword in ("Germany", "country", "2014", "nothing-here"):
            assert index.scan_search(graph, keyword) == index.search(keyword)

    def test_incremental_indexing(self):
        index = TextIndex()
        index.index_triple(IRI(EX + "s"), LABEL, Literal("Syria"))
        assert index.search("syria") == {Literal("Syria")}
        # Second occurrence of the same literal under another subject.
        index.index_triple(IRI(EX + "s2"), LABEL, Literal("Syria"))
        assert len(index) == 1
        assert len(index.occurrences(Literal("Syria"))) == 2
