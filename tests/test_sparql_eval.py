"""Unit tests for SPARQL evaluation: BGPs, paths, filters, aggregation."""

import pytest

from repro.errors import QueryTimeoutError
from repro.rdf import IRI, Literal, Triple, literal_from_python
from repro.sparql import Evaluator, evaluate_query, parse_query
from repro.store import Graph

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


def q(text):
    return parse_query(text)


@pytest.fixture
def cube_graph():
    """A miniature statistical graph: obs -> country -> continent + value."""
    g = Graph()
    data = [
        ("obs1", "Germany", "Europe", 10),
        ("obs2", "Germany", "Europe", 5),
        ("obs3", "France", "Europe", 20),
        ("obs4", "Syria", "Asia", 40),
        ("obs5", "China", "Asia", 2),
    ]
    for obs, country, continent, value in data:
        g.add(Triple(iri(obs), iri("country"), iri(country)))
        g.add(Triple(iri(country), iri("inContinent"), iri(continent)))
        g.add(Triple(iri(obs), iri("value"), literal_from_python(value)))
        g.add(Triple(iri(country), iri("label"), Literal(country)))
    return g


class TestBGP:
    def test_single_pattern(self, cube_graph):
        rs = evaluate_query(cube_graph, f"SELECT ?c WHERE {{ ?o <{EX}country> ?c }}")
        assert len(rs) == 5

    def test_join(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o ?cont WHERE {{ ?o <{EX}country> ?c . ?c <{EX}inContinent> ?cont }}",
        )
        assert len(rs) == 5
        continents = {row[1] for row in rs}
        assert continents == {iri("Europe"), iri("Asia")}

    def test_constant_subject(self, cube_graph):
        rs = evaluate_query(
            cube_graph, f"SELECT ?c WHERE {{ <{EX}obs1> <{EX}country> ?c }}"
        )
        assert rs.rows == [(iri("Germany"),)]

    def test_shared_variable_consistency(self, cube_graph):
        # ?x must take the same value in both patterns.
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?x WHERE {{ ?x <{EX}inContinent> <{EX}Europe> . "
            f"?x <{EX}label> \"Germany\" }}",
        )
        assert rs.rows == [(iri("Germany"),)]

    def test_variable_predicate(self, cube_graph):
        rs = evaluate_query(
            cube_graph, f"SELECT DISTINCT ?p WHERE {{ <{EX}Germany> ?p ?o }}"
        )
        assert {row[0] for row in rs} == {iri("inContinent"), iri("label")}

    def test_empty_result(self, cube_graph):
        rs = evaluate_query(
            cube_graph, f"SELECT ?o WHERE {{ ?o <{EX}country> <{EX}Atlantis> }}"
        )
        assert len(rs) == 0

    def test_ask(self, cube_graph):
        assert evaluate_query(cube_graph, f"ASK {{ ?o <{EX}country> <{EX}Syria> }}")
        assert not evaluate_query(cube_graph, f"ASK {{ ?o <{EX}country> <{EX}Mars> }}")


class TestPaths:
    def test_sequence_path(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o ?cont WHERE {{ ?o <{EX}country> / <{EX}inContinent> ?cont }}",
        )
        assert len(rs) == 5

    def test_sequence_path_bound_object(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o WHERE {{ ?o <{EX}country> / <{EX}inContinent> <{EX}Asia> }}",
        )
        assert {row[0] for row in rs} == {iri("obs4"), iri("obs5")}

    def test_inverse_path(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o WHERE {{ <{EX}Germany> ^<{EX}country> ?o }}",
        )
        assert {row[0] for row in rs} == {iri("obs1"), iri("obs2")}

    def test_alternative_path(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?x WHERE {{ <{EX}Germany> <{EX}inContinent> | <{EX}label> ?x }}",
        )
        assert {row[0] for row in rs} == {iri("Europe"), Literal("Germany")}

    def test_three_step_path(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?l WHERE {{ <{EX}obs1> <{EX}country> / <{EX}inContinent> / ^<{EX}inContinent> / <{EX}label> ?l }}",
        )
        assert {row[0].lexical for row in rs} == {"Germany", "France"}


class TestFilters:
    def test_numeric_filter(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o WHERE {{ ?o <{EX}value> ?v . FILTER(?v >= 20) }}",
        )
        assert {row[0] for row in rs} == {iri("obs3"), iri("obs4")}

    def test_filter_equality_on_iri(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o WHERE {{ ?o <{EX}country> ?c . FILTER(?c = <{EX}Syria>) }}",
        )
        assert {row[0] for row in rs} == {iri("obs4")}

    def test_filter_error_drops_row(self, cube_graph):
        # Comparing an IRI with a number errors -> all rows dropped.
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o WHERE {{ ?o <{EX}country> ?c . FILTER(?c > 5) }}",
        )
        assert len(rs) == 0

    def test_filter_in(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o WHERE {{ ?o <{EX}country> ?c . "
            f"FILTER(?c IN (<{EX}Syria>, <{EX}China>)) }}",
        )
        assert len(rs) == 2

    def test_regex_filter(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f'SELECT ?c WHERE {{ ?c <{EX}label> ?l . FILTER REGEX(?l, "^Ger") }}',
        )
        assert rs.rows == [(iri("Germany"),)]

    def test_isliteral(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT DISTINCT ?x WHERE {{ <{EX}Germany> ?p ?x . FILTER isLiteral(?x) }}",
        )
        assert rs.rows == [(Literal("Germany"),)]

    def test_arithmetic_in_filter(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o WHERE {{ ?o <{EX}value> ?v . FILTER(?v * 2 = 10) }}",
        )
        assert rs.rows == [(iri("obs2"),)]


class TestAggregation:
    def test_sum_group_by(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?c (SUM(?v) AS ?total) WHERE {{ ?o <{EX}country> ?c . "
            f"?o <{EX}value> ?v }} GROUP BY ?c",
        )
        totals = {row[0]: row[1].to_python() for row in rs}
        assert totals[iri("Germany")] == 15
        assert totals[iri("France")] == 20

    def test_group_by_hierarchy_level(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?cont (SUM(?v) AS ?total) WHERE {{ "
            f"?o <{EX}country> / <{EX}inContinent> ?cont . ?o <{EX}value> ?v }} "
            f"GROUP BY ?cont",
        )
        totals = {row[0]: row[1].to_python() for row in rs}
        assert totals == {iri("Europe"): 35, iri("Asia"): 42}

    def test_all_aggregate_functions(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT (SUM(?v) AS ?s) (MIN(?v) AS ?mn) (MAX(?v) AS ?mx) "
            f"(AVG(?v) AS ?av) (COUNT(?v) AS ?n) "
            f"WHERE {{ ?o <{EX}value> ?v }}",
        )
        (row,) = rs.rows
        s, mn, mx, av, n = (x.to_python() for x in row)
        assert (s, mn, mx, n) == (77, 2, 40, 5)
        assert av == pytest.approx(15.4)

    def test_count_star_and_distinct(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT (COUNT(*) AS ?n) (COUNT(DISTINCT ?c) AS ?d) "
            f"WHERE {{ ?o <{EX}country> ?c }}",
        )
        (row,) = rs.rows
        assert row[0].to_python() == 5
        assert row[1].to_python() == 4

    def test_count_on_empty_input(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT (COUNT(*) AS ?n) WHERE {{ ?o <{EX}country> <{EX}Mars> }}",
        )
        assert rs.rows == [(Literal("0", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer")),)]

    def test_group_by_empty_input_yields_no_groups(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?c (SUM(?v) AS ?t) WHERE {{ ?o <{EX}country> <{EX}Mars> . "
            f"?o <{EX}country> ?c . ?o <{EX}value> ?v }} GROUP BY ?c",
        )
        assert len(rs) == 0

    def test_having(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?c (SUM(?v) AS ?t) WHERE {{ ?o <{EX}country> ?c . "
            f"?o <{EX}value> ?v }} GROUP BY ?c HAVING (SUM(?v) >= 20)",
        )
        assert {row[0] for row in rs} == {iri("France"), iri("Syria")}

    def test_order_by_aggregate_alias(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?c (SUM(?v) AS ?t) WHERE {{ ?o <{EX}country> ?c . "
            f"?o <{EX}value> ?v }} GROUP BY ?c ORDER BY DESC(?t) LIMIT 2",
        )
        assert [row[0] for row in rs] == [iri("Syria"), iri("France")]


class TestSolutionModifiers:
    def test_distinct(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT DISTINCT ?cont WHERE {{ ?c <{EX}inContinent> ?cont }}",
        )
        assert len(rs) == 2

    def test_order_by_with_limit_offset(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o ?v WHERE {{ ?o <{EX}value> ?v }} ORDER BY ?v LIMIT 2 OFFSET 1",
        )
        assert [row[1].to_python() for row in rs] == [5, 10]

    def test_values_join(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o WHERE {{ VALUES ?c {{ <{EX}Syria> <{EX}China> }} "
            f"?o <{EX}country> ?c }}",
        )
        assert len(rs) == 2

    def test_multi_var_values_with_undef(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o ?c WHERE {{ VALUES (?c ?o) {{ (<{EX}Syria> UNDEF) }} "
            f"?o <{EX}country> ?c }}",
        )
        assert rs.rows == [(iri("obs4"), iri("Syria"))]

    def test_optional_binds_when_present(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?c ?l WHERE {{ ?c <{EX}inContinent> ?cont . "
            f"OPTIONAL {{ ?c <{EX}label> ?l }} }}",
        )
        assert all(row[1] is not None for row in rs)

    def test_optional_leaves_unbound(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?o ?miss WHERE {{ ?o <{EX}value> ?v . "
            f"OPTIONAL {{ ?o <{EX}nonexistent> ?miss }} }}",
        )
        assert len(rs) == 5
        assert all(row[1] is None for row in rs)

    def test_union(self, cube_graph):
        rs = evaluate_query(
            cube_graph,
            f"SELECT ?x WHERE {{ {{ ?x <{EX}inContinent> <{EX}Asia> }} UNION "
            f"{{ ?x <{EX}inContinent> <{EX}Europe> }} }}",
        )
        assert len(rs) == 4


class TestTimeout:
    def test_timeout_raises(self, cube_graph):
        evaluator = Evaluator(cube_graph)
        query = parse_query(
            f"SELECT ?a ?b ?c WHERE {{ ?a ?p1 ?b . ?b ?p2 ?c . ?c ?p3 ?d }}"
        )
        with pytest.raises(QueryTimeoutError):
            evaluator.select(query, timeout=-1.0)

    def test_no_timeout_by_default(self, cube_graph):
        rs = evaluate_query(cube_graph, f"SELECT ?o WHERE {{ ?o <{EX}value> ?v }}")
        assert len(rs) == 5


class TestOptimizerEquivalence:
    QUERIES = [
        f"SELECT ?o ?cont WHERE {{ ?o <{EX}country> ?c . ?c <{EX}inContinent> ?cont . "
        f"?o <{EX}value> ?v . FILTER(?v > 4) }}",
        f"SELECT ?c (SUM(?v) AS ?t) WHERE {{ ?o <{EX}country> ?c . "
        f"?o <{EX}value> ?v }} GROUP BY ?c",
        f"SELECT ?x WHERE {{ ?x <{EX}label> \"Germany\" . ?x <{EX}inContinent> ?cont }}",
    ]

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_same_results_with_and_without_optimizer(self, cube_graph, query_text):
        query = parse_query(query_text)
        with_opt = Evaluator(cube_graph, optimize=True).select(query)
        without_opt = Evaluator(cube_graph, optimize=False).select(query)
        assert with_opt == without_opt


class TestResultSet:
    def test_column_access(self, cube_graph):
        rs = evaluate_query(cube_graph, f"SELECT ?o ?v WHERE {{ ?o <{EX}value> ?v }}")
        assert len(rs.column("v")) == 5
        with pytest.raises(KeyError):
            rs.column("zzz")

    def test_to_python(self, cube_graph):
        rs = evaluate_query(
            cube_graph, f"SELECT ?v WHERE {{ <{EX}obs1> <{EX}value> ?v }}"
        )
        assert rs.to_python() == [{"v": 10}]

    def test_pretty_renders(self, cube_graph):
        rs = evaluate_query(cube_graph, f"SELECT ?o ?v WHERE {{ ?o <{EX}value> ?v }}")
        text = rs.pretty(max_rows=2)
        assert "?o" in text and "more rows" in text
