"""Tests for description templates, namespaces, and evaluator edge cases."""

import pytest

from repro.core import describe_query, reolap
from repro.core.describe import (
    describe_disaggregate,
    describe_percentile,
    describe_similarity,
    describe_topk,
)
from repro.rdf import IRI, Literal, Namespace, QB, RDF, Triple, literal_from_python
from repro.sparql import evaluate_query, parse_query
from repro.store import Graph

EX = "http://example.org/"


class TestDescribe:
    @pytest.fixture()
    def query(self, mini_endpoint, mini_vgraph):
        (query, *_rest) = reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"))
        return query

    def test_base_template(self, query):
        text = describe_query(query)
        assert text.startswith("Return SUM/MIN/MAX/AVG(Num Applicants) grouped by")
        assert "'Germany'" in text

    def test_disaggregate_template(self, query):
        assert 'disaggregated by "Sex"' in describe_disaggregate(query, "Sex")

    def test_topk_template(self, query):
        text = describe_topk(query, 5, "SUM(Num Applicants)", descending=True)
        assert "5 highest" in text
        text = describe_topk(query, 3, "SUM(Num Applicants)", descending=False)
        assert "3 lowest" in text

    def test_percentile_templates(self, query):
        assert "between the 25th and 50th percentile" in describe_percentile(
            query, 25, 50, "SUM(x)"
        )
        assert "above the 90th percentile" in describe_percentile(query, 90, None, "SUM(x)")
        assert "below the 25th percentile" in describe_percentile(query, None, 25, "SUM(x)")

    def test_similarity_template(self, query):
        text = describe_similarity(query, 3, "SUM(x)", ["Germany"])
        assert "3 member combinations most similar" in text


class TestNamespace:
    def test_attribute_and_item_access(self):
        ns = Namespace(EX)
        assert ns.Germany == IRI(EX + "Germany")
        assert ns["Country of Origin"] == IRI(EX + "Country%20of%20Origin")
        assert ns.term("class") == IRI(EX + "class")

    def test_contains(self):
        ns = Namespace(EX)
        assert ns.Germany in ns
        assert IRI("http://other.org/x") not in ns

    def test_equality_and_repr(self):
        assert Namespace(EX) == Namespace(EX)
        assert hash(Namespace(EX)) == hash(Namespace(EX))
        assert EX in repr(Namespace(EX))

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            Namespace("")

    def test_standard_vocabularies(self):
        assert RDF.type.value.endswith("#type")
        assert QB.Observation.value == "http://purl.org/linked-data/cube#Observation"


class TestEvaluatorEdgeCases:
    @pytest.fixture()
    def graph(self):
        g = Graph()
        g.add(Triple(IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "b")))
        g.add(Triple(IRI(EX + "b"), IRI(EX + "q"), literal_from_python(1)))
        g.add(Triple(IRI(EX + "c"), IRI(EX + "p"), IRI(EX + "d")))
        return g

    def test_nested_optional(self, graph):
        rs = evaluate_query(
            graph,
            f"SELECT ?x ?v WHERE {{ ?x <{EX}p> ?y . "
            f"OPTIONAL {{ ?y <{EX}q> ?v . OPTIONAL {{ ?v <{EX}r> ?w }} }} }}",
        )
        values = dict(rs.rows)
        assert values[IRI(EX + "a")] is not None
        assert values[IRI(EX + "c")] is None

    def test_union_with_filter(self, graph):
        rs = evaluate_query(
            graph,
            f"SELECT ?x WHERE {{ "
            f"{{ ?x <{EX}p> <{EX}b> }} UNION {{ ?x <{EX}p> <{EX}d> }} "
            f"FILTER(?x != <{EX}c>) }}",
        )
        assert rs.rows == [(IRI(EX + "a"),)]

    def test_multiple_having_constraints(self, graph):
        rs = evaluate_query(
            graph,
            f"SELECT ?y (COUNT(*) AS ?n) WHERE {{ ?x <{EX}p> ?y }} GROUP BY ?y "
            f"HAVING (COUNT(*) >= 1) (COUNT(*) <= 1)",
        )
        assert len(rs) == 2

    def test_multi_key_order(self, graph):
        rs = evaluate_query(
            graph,
            f"SELECT ?x ?y WHERE {{ ?x <{EX}p> ?y }} ORDER BY DESC(?x) ?y",
        )
        assert rs.rows[0][0] == IRI(EX + "c")

    def test_select_star_with_optional_unbound(self, graph):
        rs = evaluate_query(
            graph,
            f"SELECT * WHERE {{ ?x <{EX}p> ?y . OPTIONAL {{ ?y <{EX}q> ?v }} }}",
        )
        assert len(rs) == 2
        assert len(rs.variables) == 3

    def test_aggregate_skips_error_rows(self, graph):
        # ?v is unbound for one branch: AVG skips it rather than erroring.
        rs = evaluate_query(
            graph,
            f"SELECT (AVG(?v) AS ?a) (COUNT(*) AS ?n) WHERE {{ "
            f"?x <{EX}p> ?y . OPTIONAL {{ ?y <{EX}q> ?v }} }}",
        )
        (row,) = rs.rows
        assert row[0].to_python() == 1
        assert row[1].to_python() == 2

    def test_group_by_unbound_key_kept(self, graph):
        rs = evaluate_query(
            graph,
            f"SELECT ?v (COUNT(*) AS ?n) WHERE {{ ?x <{EX}p> ?y . "
            f"OPTIONAL {{ ?y <{EX}q> ?v }} }} GROUP BY ?v",
        )
        keys = {row[0] for row in rs}
        assert None in keys

    def test_empty_group_pattern(self, graph):
        rs = evaluate_query(graph, "SELECT (COUNT(*) AS ?n) WHERE { }")
        assert rs.rows[0][0].to_python() == 1  # the empty solution
