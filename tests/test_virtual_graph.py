"""Tests for virtual schema graph construction and traversal (Section 5.2)."""

import pytest

from repro.errors import BootstrapError
from repro.core import VirtualSchemaGraph, VLevel, path_variable
from repro.qb import OBSERVATION_CLASS
from repro.rdf import IRI, Literal, Triple, Variable, literal_from_python
from repro.store import Endpoint, Graph

MINI = "http://example.org/mini/"


def prop(name):
    return IRI(MINI + "prop/" + name)


class TestBootstrap:
    def test_discovers_all_levels(self, mini_vgraph):
        paths = {tuple(p.value for p in lvl.path) for lvl in mini_vgraph.all_levels()}
        expected = {
            (MINI + "prop/country_of_origin",),
            (MINI + "prop/country_of_origin", MINI + "prop/in_continent"),
            (MINI + "prop/country_of_destination",),
            (MINI + "prop/country_of_destination", MINI + "prop/in_continent"),
            (MINI + "prop/ref_period",),
        }
        assert paths == expected

    def test_discovers_measures(self, mini_vgraph):
        labels = set(mini_vgraph.measures.values())
        assert labels == {"Num Applicants"}

    def test_member_counts(self, mini_vgraph):
        origin = mini_vgraph.level((prop("country_of_origin"),))
        assert origin.member_count == 4
        continent = mini_vgraph.level((prop("country_of_origin"), prop("in_continent")))
        assert continent.member_count == 2

    def test_observation_count(self, mini_vgraph):
        assert mini_vgraph.observation_count == 120

    def test_labels_from_annotations(self, mini_vgraph):
        level = mini_vgraph.level((prop("country_of_origin"), prop("in_continent")))
        assert level.label == "Country Of Origin / In Continent"

    def test_attribute_predicates_include_label(self, mini_vgraph):
        level = mini_vgraph.level((prop("country_of_origin"),))
        assert IRI("http://www.w3.org/2000/01/rdf-schema#label") in level.attribute_predicates

    def test_vocabulary_predicates_excluded(self, mini_vgraph):
        for level in mini_vgraph.all_levels():
            for predicate in level.path:
                assert "purl.org" not in predicate.value
                assert not predicate.value.endswith("#type")

    def test_empty_graph_raises(self):
        endpoint = Endpoint(Graph())
        with pytest.raises(BootstrapError):
            VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)

    def test_no_measures_raises(self):
        g = Graph()
        obs = IRI("urn:obs1")
        g.add(Triple(obs, IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), OBSERVATION_CLASS))
        g.add(Triple(obs, IRI("urn:dim"), IRI("urn:member")))
        with pytest.raises(BootstrapError):
            VirtualSchemaGraph.bootstrap(Endpoint(g), OBSERVATION_CLASS)

    def test_cycle_guard_depth_cap(self):
        # a -> b -> a -> b ... must terminate via max_depth.
        g = Graph()
        rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        obs, a, b = IRI("urn:obs"), IRI("urn:a"), IRI("urn:b")
        g.add(Triple(obs, rdf_type, OBSERVATION_CLASS))
        g.add(Triple(obs, IRI("urn:dim"), a))
        g.add(Triple(obs, IRI("urn:val"), literal_from_python(5)))
        g.add(Triple(a, IRI("urn:p"), b))
        g.add(Triple(b, IRI("urn:q"), a))
        vgraph = VirtualSchemaGraph.bootstrap(Endpoint(g), OBSERVATION_CLASS, max_depth=4)
        assert all(lvl.depth <= 4 for lvl in vgraph.all_levels())


class TestTraversal:
    def test_base_levels(self, mini_vgraph):
        assert {lvl.path[0].local_name() for lvl in mini_vgraph.base_levels()} == {
            "country_of_origin", "country_of_destination", "ref_period",
        }

    def test_levels_with_terminal_ambiguous(self, mini_vgraph):
        # in_continent terminates both origin and destination continent levels.
        levels = mini_vgraph.levels_with_terminal(prop("in_continent"))
        assert len(levels) == 2

    def test_levels_of_dimension(self, mini_vgraph):
        levels = mini_vgraph.levels_of_dimension(prop("country_of_origin"))
        assert [lvl.depth for lvl in levels] == [1, 2]

    def test_finer_coarser(self, mini_vgraph):
        base = mini_vgraph.level((prop("country_of_origin"),))
        upper = mini_vgraph.level((prop("country_of_origin"), prop("in_continent")))
        assert base.is_finer_than(upper)
        assert upper.is_coarser_than(base)
        assert not upper.is_finer_than(base)
        other = mini_vgraph.level((prop("country_of_destination"),))
        assert not other.is_finer_than(upper)

    def test_n_members_totals(self, mini_vgraph):
        # 4 + 2 (origin) + 4 + 2 (destination) + 3 (year) = 15
        assert mini_vgraph.n_members == 15

    def test_unknown_path_raises(self, mini_vgraph):
        with pytest.raises(KeyError):
            mini_vgraph.level((IRI("urn:nope"),))

    def test_summary_renders(self, mini_vgraph):
        text = mini_vgraph.summary()
        assert "observations (120)" in text
        assert "Num Applicants" in text


class TestPathVariable:
    def test_deterministic(self):
        path = (prop("country_of_origin"), prop("in_continent"))
        assert path_variable(path) == path_variable(path)
        assert path_variable(path) == Variable("country_of_origin_in_continent")

    def test_sanitizes_odd_characters(self):
        assert path_variable((IRI("http://x.org/x-y.z"),)).name == "x_y_z"

    def test_leading_digit(self):
        name = path_variable((IRI("http://x.org/1abc"),)).name
        assert name.startswith("p") and "1abc" in name


class TestRefresh:
    def test_refreshed_counts_new_data(self, mini_kg):
        endpoint = mini_kg.endpoint()
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        before = vgraph.observation_count
        # Append one more observation reusing an existing member.
        from repro.qb import CubeBuilder
        from tests.conftest import mini_schema

        builder = CubeBuilder(mini_schema(), seed=42)
        obs = IRI(MINI + "obs/99999")
        member = mini_kg.members_of("origin", "country")[0]
        rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        mini_kg.graph.add(Triple(obs, rdf_type, OBSERVATION_CLASS))
        mini_kg.graph.add(Triple(obs, prop("country_of_origin"), member.iri))
        try:
            refreshed = vgraph.refreshed(endpoint)
            assert refreshed.observation_count == before + 1
            assert refreshed.levels.keys() == vgraph.levels.keys()
        finally:
            mini_kg.graph.remove(Triple(obs, rdf_type, OBSERVATION_CLASS))
            mini_kg.graph.remove(Triple(obs, prop("country_of_origin"), member.iri))


class TestVLevel:
    def test_requires_path(self):
        with pytest.raises(ValueError):
            VLevel(path=(), member_count=0, label="x")

    def test_base_properties(self):
        level = VLevel(path=(prop("a"), prop("b")), member_count=5, label="A / B")
        assert level.dimension_predicate == prop("a")
        assert level.terminal_predicate == prop("b")
        assert level.depth == 2
        assert not level.is_base
