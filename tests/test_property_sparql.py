"""Property-based tests for the SPARQL engine's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Triple, literal_from_python
from repro.sparql import Evaluator, parse_query
from repro.store import Graph

EX = "http://example.org/"

# Tiny universes so random BGPs actually join.
subject_ids = st.integers(min_value=0, max_value=5)
predicate_ids = st.integers(min_value=0, max_value=3)
object_ids = st.integers(min_value=0, max_value=5)

graph_triples = st.lists(
    st.tuples(subject_ids, predicate_ids, object_ids), min_size=1, max_size=40
)

# A random 2-pattern BGP over variables ?a ?b ?c with random predicates.
bgp_shapes = st.tuples(
    predicate_ids, predicate_ids,
    st.sampled_from(["chain", "fork", "loop"]),
)


def build_graph(encoded):
    graph = Graph()
    for s, p, o in encoded:
        graph.add(Triple(IRI(f"{EX}n{s}"), IRI(f"{EX}p{p}"), IRI(f"{EX}n{o}")))
    # Numeric values on every subject, for aggregate properties.
    for s in {s for s, _p, _o in encoded}:
        graph.add(Triple(IRI(f"{EX}n{s}"), IRI(f"{EX}value"), literal_from_python(s * 10)))
    return graph


def bgp_query(p1, p2, shape):
    if shape == "chain":
        body = f"?a <{EX}p{p1}> ?b . ?b <{EX}p{p2}> ?c ."
    elif shape == "fork":
        body = f"?a <{EX}p{p1}> ?b . ?a <{EX}p{p2}> ?c ."
    else:  # loop
        body = f"?a <{EX}p{p1}> ?b . ?b <{EX}p{p2}> ?a ."
    return f"SELECT ?a ?b ?c WHERE {{ {body} }}"


class TestEvaluatorProperties:
    @settings(max_examples=60, deadline=None)
    @given(graph_triples, bgp_shapes)
    def test_optimizer_never_changes_results(self, encoded, shape):
        graph = build_graph(encoded)
        query = parse_query(bgp_query(*shape))
        optimized = Evaluator(graph, optimize=True).select(query)
        plain = Evaluator(graph, optimize=False).select(query)
        assert optimized == plain

    @settings(max_examples=60, deadline=None)
    @given(graph_triples, bgp_shapes)
    def test_join_agrees_with_nested_loop_reference(self, encoded, shape):
        """The engine's BGP join equals a brute-force nested-loop join."""
        graph = build_graph(encoded)
        p1, p2, kind = shape
        pred1, pred2 = IRI(f"{EX}p{p1}"), IRI(f"{EX}p{p2}")
        expected = set()
        for t1 in graph.triples(None, pred1, None):
            for t2 in graph.triples(None, pred2, None):
                if kind == "chain" and t1.o == t2.s:
                    expected.add((t1.s, t1.o, t2.o))
                elif kind == "fork" and t1.s == t2.s:
                    expected.add((t1.s, t1.o, t2.o))
                elif kind == "loop" and t1.o == t2.s and t2.o == t1.s:
                    expected.add((t1.s, t1.o, t1.s))
        results = Evaluator(graph).select(parse_query(bgp_query(*shape)))
        if kind == "loop":
            got = {(row[0], row[1], row[0]) for row in results}
        else:
            got = set(results.rows)
        assert got == expected

    @settings(max_examples=40, deadline=None)
    @given(graph_triples)
    def test_sum_group_by_matches_python(self, encoded):
        graph = build_graph(encoded)
        query = parse_query(
            f"SELECT ?o (SUM(?v) AS ?s) WHERE {{ ?s <{EX}p0> ?o . "
            f"?s <{EX}value> ?v }} GROUP BY ?o"
        )
        results = Evaluator(graph).select(query)
        expected: dict = {}
        for triple in graph.triples(None, IRI(f"{EX}p0"), None):
            value = graph.value(triple.s, IRI(f"{EX}value"), None)
            expected[triple.o] = expected.get(triple.o, 0) + int(value.lexical)
        got = {row[0]: int(row[1].lexical) for row in results}
        assert got == expected

    @settings(max_examples=40, deadline=None)
    @given(graph_triples, st.integers(min_value=0, max_value=10))
    def test_limit_is_a_prefix_of_unlimited(self, encoded, limit):
        graph = build_graph(encoded)
        base = f"SELECT ?a ?b WHERE {{ ?a <{EX}p0> ?b }} ORDER BY ?a ?b"
        full = Evaluator(graph).select(parse_query(base))
        limited = Evaluator(graph).select(parse_query(base + f" LIMIT {limit}"))
        assert limited.rows == full.rows[:limit]

    @settings(max_examples=40, deadline=None)
    @given(graph_triples)
    def test_distinct_removes_exactly_duplicates(self, encoded):
        graph = build_graph(encoded)
        query_text = f"SELECT ?b WHERE {{ ?a <{EX}p0> ?b }}"
        plain = Evaluator(graph).select(parse_query(query_text))
        distinct = Evaluator(graph).select(parse_query(query_text.replace("SELECT", "SELECT DISTINCT")))
        assert set(distinct.rows) == set(plain.rows)
        assert len(distinct) == len(set(plain.rows))

    @settings(max_examples=40, deadline=None)
    @given(graph_triples)
    def test_path_equals_chain(self, encoded):
        """``p0/p1`` path results equal the explicit two-pattern chain."""
        graph = build_graph(encoded)
        path = Evaluator(graph).select(parse_query(
            f"SELECT ?a ?c WHERE {{ ?a <{EX}p0> / <{EX}p1> ?c }}"
        ))
        chain = Evaluator(graph).select(parse_query(
            f"SELECT DISTINCT ?a ?c WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c }}"
        ))
        assert set(path.rows) == set(chain.rows)

    @settings(max_examples=40, deadline=None)
    @given(graph_triples)
    def test_plus_closure_equals_reference_fixpoint(self, encoded):
        """``p0+`` equals the transitive closure computed by iteration."""
        graph = build_graph(encoded)
        edges = {
            (t.s, t.o) for t in graph.triples(None, IRI(f"{EX}p0"), None)
        }
        closure = set(edges)
        while True:
            extra = {
                (a, d) for (a, b) in closure for (c, d) in edges if b == c
            } - closure
            if not extra:
                break
            closure |= extra
        result = Evaluator(graph).select(parse_query(
            f"SELECT ?a ?b WHERE {{ ?a <{EX}p0>+ ?b }}"
        ))
        assert set(result.rows) == closure

    @settings(max_examples=40, deadline=None)
    @given(graph_triples)
    def test_star_closure_adds_reflexive_pairs(self, encoded):
        graph = build_graph(encoded)
        plus = Evaluator(graph).select(parse_query(
            f"SELECT ?a ?b WHERE {{ ?a <{EX}p0>* ?b }}"
        ))
        strict = Evaluator(graph).select(parse_query(
            f"SELECT ?a ?b WHERE {{ ?a <{EX}p0>+ ?b }}"
        ))
        star_pairs = set(plus.rows)
        assert set(strict.rows) <= star_pairs
        # Every endpoint of the predicate appears reflexively under '*'.
        for t in graph.triples(None, IRI(f"{EX}p0"), None):
            assert (t.s, t.s) in star_pairs
            assert (t.o, t.o) in star_pairs

    @settings(max_examples=40, deadline=None)
    @given(graph_triples)
    def test_ask_iff_select_nonempty(self, encoded):
        graph = build_graph(encoded)
        body = f"{{ ?a <{EX}p1> ?b . ?b <{EX}p2> ?c }}"
        ask = Evaluator(graph).ask(parse_query("ASK " + body))
        select = Evaluator(graph).select(parse_query("SELECT ?a WHERE " + body))
        assert ask == bool(select)
