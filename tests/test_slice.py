"""Tests for the Slice refinement operator."""

import pytest

from repro.core import Slice, reolap
from repro.rdf import IRI

MINI = "http://example.org/mini/"


def prop(name):
    return IRI(MINI + "prop/" + name)


@pytest.fixture()
def two_dim_query(mini_endpoint, mini_vgraph):
    queries = reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"))
    by_dims = {
        frozenset(d.level.dimension_predicate for d in q.dimensions): q for q in queries
    }
    return by_dims[frozenset({prop("country_of_destination"), prop("ref_period")})]


class TestSlice:
    def test_one_proposal_per_anchored_dimension(self, two_dim_query):
        proposals = Slice().propose(two_dim_query)
        assert len(proposals) == 2  # Germany slice + 2014 slice

    def test_slice_drops_column_and_filters(self, mini_endpoint, two_dim_query):
        germany_slice = next(
            p for p in Slice().propose(two_dim_query) if "Germany" in p.explanation
        )
        results = mini_endpoint.select(germany_slice.query.to_select())
        base = mini_endpoint.select(two_dim_query.to_select())
        # Column count shrinks by one dimension.
        assert len(results.variables) == len(base.variables) - 1
        # Rows correspond to the Germany slice: one per year.
        year_var = next(
            v for v in germany_slice.query.group_variables if "ref_period" in v.name
        )
        assert len(results) == len(set(results.column(year_var)))

    def test_slice_totals_match_filtered_base(self, mini_endpoint, two_dim_query):
        germany_slice = next(
            p for p in Slice().propose(two_dim_query) if "Germany" in p.explanation
        )
        sliced = mini_endpoint.select(germany_slice.query.to_select())
        base = mini_endpoint.select(two_dim_query.to_select())
        sum_var = two_dim_query.measures[0].alias("SUM")
        year_var = next(v for v in two_dim_query.group_variables if "ref_period" in v.name)
        dest_var = next(v for v in two_dim_query.group_variables if "destination" in v.name)
        germany = next(
            a.member for a in two_dim_query.anchors if a.keyword == "Germany"
        )
        base_by_year = {
            row[base.index_of(year_var)]: row[base.index_of(sum_var)]
            for row in base.rows
            if row[base.index_of(dest_var)] == germany
        }
        sliced_by_year = {
            row[sliced.index_of(year_var)]: row[sliced.index_of(sum_var)]
            for row in sliced.rows
        }
        assert sliced_by_year == base_by_year

    def test_remaining_anchor_still_enforced(self, mini_endpoint, two_dim_query):
        year_slice = next(
            p for p in Slice().propose(two_dim_query) if "2014" in p.explanation
        )
        results = mini_endpoint.select(year_slice.query.to_select())
        # Germany still anchors: at least one row matches it.
        assert year_slice.query.anchor_row_indexes(results)

    def test_single_dimension_query_not_sliceable(self, mini_endpoint, mini_vgraph):
        (query, *_rest) = reolap(mini_endpoint, mini_vgraph, ("Germany",))
        best = next(q for q in [query] if len(q.dimensions) == 1)
        assert Slice().propose(best) == []

    def test_session_exposes_slice(self, mini_endpoint, mini_vgraph):
        from repro.core import ExplorationSession

        session = ExplorationSession(mini_endpoint, mini_vgraph)
        session.synthesize("Germany", "2014")
        session.choose(0)
        proposals = session.refinements("slice")
        assert proposals
        results = session.apply(proposals[0])
        assert len(results) > 0

    def test_slice_sparql_roundtrips(self, two_dim_query):
        from repro.sparql import parse_query

        for proposal in Slice().propose(two_dim_query):
            text = proposal.query.sparql()
            assert parse_query(text).to_sparql() == text

    def test_with_slice_validation(self, two_dim_query, mini_vgraph):
        foreign = mini_vgraph.level((prop("country_of_origin"),))
        with pytest.raises(ValueError):
            two_dim_query.with_slice(foreign, IRI(MINI + "member/country/0"), "x")
