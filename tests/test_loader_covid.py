"""Tests for the CSV/table loader and the COVID-19 dataset."""

import io

import pytest

from repro.core import ExplorationSession, VirtualSchemaGraph, reolap
from repro.datasets import covid_schema, generate_covid
from repro.errors import SchemaError
from repro.qb import OBSERVATION_CLASS, TYPE, load_csv, load_table
from repro.rdf import Literal
from repro.store import Endpoint

TABLE = [
    {"destination": "Germany", "continent": "Europe", "year": "2014", "applicants": "10"},
    {"destination": "Germany", "continent": "Europe", "year": "2015", "applicants": "25"},
    {"destination": "France", "continent": "Europe", "year": "2014", "applicants": "20"},
    {"destination": "Japan", "continent": "Asia", "year": "2014", "applicants": "5"},
]

DIMENSIONS = {"destination": "continent", "year": None}
MEASURES = ["applicants"]


class TestLoadTable:
    def test_observations_and_members(self):
        graph = load_table(TABLE, DIMENSIONS, MEASURES)
        assert graph.count(None, TYPE, OBSERVATION_CLASS) == 4
        labels = {l.lexical for l in graph.literals()}
        assert {"Germany", "France", "Japan", "Europe", "Asia", "2014", "2015"} <= labels

    def test_members_deduplicated(self):
        graph = load_table(TABLE, DIMENSIONS, MEASURES)
        germany_hits = [
            s for s in graph.subjects(None, Literal("Germany"))
        ]
        assert len(germany_hits) == 1

    def test_loaded_graph_is_explorable(self):
        """The adoption path: CSV rows → bootstrap → example-driven query."""
        graph = load_table(TABLE, DIMENSIONS, MEASURES)
        endpoint = Endpoint(graph)
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        assert vgraph.n_levels == 3  # destination, continent, year
        queries = reolap(endpoint, vgraph, ("Germany", "2014"))
        assert queries
        results = endpoint.select(queries[0].to_select())
        totals = {row[0]: row[results.index_of("sum_applicants")].to_python()
                  for row in results.rows}
        assert 10 in totals.values()

    def test_missing_dimension_cell_rejected(self):
        broken = [dict(TABLE[0])]
        broken[0]["destination"] = ""
        with pytest.raises(SchemaError):
            load_table(broken, DIMENSIONS, MEASURES)

    def test_missing_hierarchy_cell_rejected(self):
        broken = [dict(TABLE[0])]
        del broken[0]["continent"]
        with pytest.raises(SchemaError):
            load_table(broken, DIMENSIONS, MEASURES)

    def test_non_numeric_measure_rejected(self):
        broken = [dict(TABLE[0], applicants="many")]
        with pytest.raises(SchemaError):
            load_table(broken, DIMENSIONS, MEASURES)

    def test_row_without_any_measure_rejected(self):
        broken = [dict(TABLE[0], applicants="")]
        with pytest.raises(SchemaError):
            load_table(broken, DIMENSIONS, MEASURES)

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            load_table([], DIMENSIONS, MEASURES)

    def test_overlapping_columns_rejected(self):
        with pytest.raises(SchemaError):
            load_table(TABLE, {"applicants": None}, MEASURES)

    def test_float_measures(self):
        rows = [dict(TABLE[0], applicants="1.5")]
        graph = load_table(rows, DIMENSIONS, MEASURES)
        values = [l for l in graph.literals() if l.is_numeric]
        assert any(l.lexical == "1.5" for l in values)

    def test_load_csv(self):
        text = "destination,continent,year,applicants\n" + "\n".join(
            f"{r['destination']},{r['continent']},{r['year']},{r['applicants']}"
            for r in TABLE
        )
        graph = load_csv(io.StringIO(text), DIMENSIONS, MEASURES)
        assert graph.count(None, TYPE, OBSERVATION_CLASS) == 4


class TestCovidDataset:
    def test_schema_shape(self):
        schema = covid_schema(scale=0.1)
        stats = schema.describe()
        assert stats["D"] == 4
        assert stats["M"] == 1
        # Three-level time hierarchy: day, week, month among the levels.
        level_names = {level.name for d in schema.dimensions for _h, level in d.levels()}
        assert {"day", "week", "month"} <= level_names

    def test_generation_and_exploration(self):
        kg = generate_covid(n_observations=300, scale=0.05, seed=3)
        endpoint = kg.endpoint()
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        session = ExplorationSession(endpoint, vgraph)
        candidates = session.synthesize("Germany")
        assert candidates
        session.choose(0)
        # The deep time hierarchy shows up in the drill-down menu.
        drills = {r.explanation for r in session.refinements("disaggregate")}
        assert any("In Week" in d for d in drills)
        assert any("In Month" in d for d in drills)

    def test_three_level_drilldown_chain(self):
        kg = generate_covid(n_observations=300, scale=0.05, seed=3)
        endpoint = kg.endpoint()
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        time_levels = vgraph.levels_of_dimension(
            next(p for p in vgraph.dimension_predicates()
                 if p.local_name() == "reporting_date")
        )
        assert [lvl.depth for lvl in time_levels] == [1, 2, 3]
