"""Serving layer: executor admission control, RW lock, QueryService.

The acceptance-critical test drives 8+ threads of mixed exploration
sessions through one :class:`QueryService` and checks every thread saw
exactly the results a serial, uncached run produces — concurrency plus
caching must be invisible to correctness.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait

import pytest

from repro.core import ExplorationSession, VirtualSchemaGraph
from repro.errors import (
    AdmissionError,
    QueryTimeoutError,
    ServiceShutdownError,
    ServingError,
)
from repro.qb import OBSERVATION_CLASS
from repro.rdf import IRI, Literal
from repro.rdf.triple import Triple
from repro.serving import QueryCache, QueryService, RWLock, ServingExecutor
from repro.store import Endpoint, Graph


def triple(i: int) -> Triple:
    return Triple(IRI(f"urn:s{i}"), IRI("urn:p"), Literal(str(i)))


def small_graph(n: int = 30) -> Graph:
    return Graph(triples=[triple(i) for i in range(n)])


SELECT_ALL = "SELECT ?s ?o WHERE { ?s <urn:p> ?o }"


# ---------------------------------------------------------------------------
# ServingExecutor
# ---------------------------------------------------------------------------


class TestServingExecutor:
    def test_runs_work_and_counts(self):
        with ServingExecutor(workers=2) as pool:
            futures = [pool.submit(lambda x: x * 2, i) for i in range(10)]
            assert sorted(f.result() for f in futures) == [2 * i for i in range(10)]
        stats = pool.stats
        assert stats.submitted == 10 and stats.completed == 10
        assert stats.rejected == 0 and stats.in_flight == 0

    def test_admission_control_rejects_when_full(self):
        release = threading.Event()
        with ServingExecutor(workers=1, max_pending=0) as pool:
            blocker = pool.submit(release.wait)
            with pytest.raises(AdmissionError):
                pool.submit(lambda: None)
            assert pool.stats.rejected == 1
            release.set()
            blocker.result(timeout=5)
            # Slot freed: admission works again.
            assert pool.submit(lambda: 42).result(timeout=5) == 42

    def test_expired_deadline_fails_without_running(self):
        ran = []
        with ServingExecutor(workers=1) as pool:
            future = pool.submit(lambda **kw: ran.append(1),
                                 deadline=time.monotonic() - 0.1)
            with pytest.raises(QueryTimeoutError):
                future.result(timeout=5)
        assert not ran
        assert pool.stats.deadline_expired == 1

    def test_deadline_tightens_cooperative_timeout(self):
        seen = {}

        def work(timeout=None):
            seen["timeout"] = timeout
            return "ok"

        with ServingExecutor(workers=1) as pool:
            # Caller allows 100s but only 1s of deadline budget remains.
            future = pool.submit(work, timeout=100.0,
                                 deadline=time.monotonic() + 1.0)
            assert future.result(timeout=5) == "ok"
        assert seen["timeout"] <= 1.0

    def test_submit_after_shutdown_raises(self):
        pool = ServingExecutor(workers=1)
        pool.shutdown()
        with pytest.raises(ServiceShutdownError):
            pool.submit(lambda: None)

    def test_failed_tasks_release_slots(self):
        with ServingExecutor(workers=1, max_pending=0) as pool:
            for _ in range(5):
                future = pool.submit(lambda: 1 / 0)
                with pytest.raises(ZeroDivisionError):
                    future.result(timeout=5)
        assert pool.stats.failed == 5


class TestRWLock:
    def test_writer_excludes_readers(self):
        lock = RWLock()
        log = []

        def reader(delay):
            with lock.read_locked():
                log.append("r-in")
                time.sleep(delay)
                log.append("r-out")

        def writer():
            with lock.write_locked():
                log.append("w")

        threads = [threading.Thread(target=reader, args=(0.05,)) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.01)  # let readers enter
        w = threading.Thread(target=writer)
        w.start()
        for t in threads + [w]:
            t.join(timeout=5)
        # The writer ran strictly after every in-flight reader left.
        assert log.index("w") > max(i for i, e in enumerate(log) if e == "r-out") - 1
        assert log.count("r-in") == 3 and log.count("w") == 1

    def test_write_lock_protects_counter(self):
        lock = RWLock()
        state = {"n": 0}

        def bump():
            for _ in range(200):
                with lock.write_locked():
                    current = state["n"]
                    time.sleep(0)  # force interleaving opportunity
                    state["n"] = current + 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert state["n"] == 800


# ---------------------------------------------------------------------------
# Endpoint thread safety (shared under the executor)
# ---------------------------------------------------------------------------


class TestEndpointThreadSafety:
    def test_stats_updates_are_not_lost(self):
        ep = Endpoint(small_graph(), cache=QueryCache())
        n_threads, n_calls = 8, 40

        def worker():
            for _ in range(n_calls):
                ep.select(SELECT_ALL)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert ep.stats.select_queries == n_threads * n_calls
        assert ep.stats.cache_hits >= n_threads * n_calls - n_threads

    def test_lazy_text_index_built_once(self, monkeypatch):
        from repro.store import text_index as text_index_module

        calls = []
        original = text_index_module.TextIndex.from_graph.__func__

        def counting(cls, graph):
            calls.append(1)
            time.sleep(0.02)  # widen the race window
            return original(cls, graph)

        monkeypatch.setattr(text_index_module.TextIndex, "from_graph",
                            classmethod(counting))
        ep = Endpoint(small_graph())
        start = threading.Barrier(8)

        def lookup():
            start.wait(timeout=5)
            ep.resolve_keyword("3")

        threads = [threading.Thread(target=lookup) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(calls) == 1


# ---------------------------------------------------------------------------
# QueryService
# ---------------------------------------------------------------------------


class TestQueryService:
    def test_execute_and_submit_agree(self):
        with QueryService(small_graph(), workers=2) as service:
            direct = service.execute(SELECT_ALL)
            queued = service.submit(SELECT_ALL).result(timeout=10)
            assert direct == queued
            assert service.stats().requests == 2

    def test_mutation_through_service_invalidates_cache(self):
        graph = small_graph()
        with QueryService(graph, workers=2) as service:
            before = service.execute(SELECT_ALL)
            service.mutate(lambda g: g.add(triple(999)))
            after = service.execute(SELECT_ALL)
            assert len(after) == len(before) + 1

    def test_session_lifecycle(self, mini_kg):
        endpoint = mini_kg.endpoint()
        with QueryService(endpoint, workers=2) as service:
            sid = service.open_session(OBSERVATION_CLASS)
            assert service.session_ids() == [sid]
            with pytest.raises(ServingError):
                service.open_session(OBSERVATION_CLASS, session_id=sid)
            service.close_session(sid)
            assert service.session_ids() == []
            with pytest.raises(ServingError):
                service.session(sid)

    def test_shutdown_rejects_new_work(self):
        service = QueryService(small_graph(), workers=1)
        service.shutdown()
        with pytest.raises(ServiceShutdownError):
            service.execute(SELECT_ALL)
        with pytest.raises(ServiceShutdownError):
            service.submit(SELECT_ALL)

    def test_request_deadline_composes(self):
        service = QueryService(small_graph(), workers=1,
                               request_deadline=-0.001)
        try:
            with pytest.raises(QueryTimeoutError):
                service.submit(SELECT_ALL).result(timeout=10)
        finally:
            service.shutdown()

    def test_default_timeout_survives_request_deadline(self):
        """The DEFAULT_TIMEOUT sentinel must resolve to the endpoint's
        configured default, not to the remaining request deadline.

        Regression test: the executor's deadline composition used to
        replace any non-numeric timeout — the sentinel included — with the
        remaining queue budget, silently extending a request far past the
        endpoint default.  With a zero default and a generous deadline the
        query must still time out immediately.
        """
        service = QueryService(small_graph(200), workers=1,
                               default_timeout=0.0, request_deadline=30.0)
        try:
            with pytest.raises(QueryTimeoutError):
                service.submit(SELECT_ALL).result(timeout=10)
        finally:
            service.shutdown()

    def test_explicit_timeout_zero_is_honored(self):
        """timeout=0 is an already-expired budget, not falsy noise."""
        service = QueryService(small_graph(200), workers=1)
        try:
            with pytest.raises(QueryTimeoutError):
                service.submit(SELECT_ALL, timeout=0).result(timeout=10)
            with pytest.raises(QueryTimeoutError):
                service.execute(SELECT_ALL, timeout=0)
        finally:
            service.shutdown()

    def test_explicit_timeout_none_disables_default(self):
        """timeout=None means unlimited even under a tiny default."""
        service = QueryService(small_graph(), workers=1,
                               default_timeout=1e-9)
        try:
            # The default alone must fire...
            with pytest.raises(QueryTimeoutError):
                service.execute(SELECT_ALL)
            # ...and an explicit None must override it, both paths.
            assert len(service.execute(SELECT_ALL, timeout=None)) == 30
            future = service.submit(SELECT_ALL, timeout=None)
            assert len(future.result(timeout=10)) == 30
        finally:
            service.shutdown()

    def test_concurrent_mixed_sessions_match_serial(self, mini_kg):
        """≥8 threads of mixed sessions; results identical to serial."""
        n_threads = 8
        example = "Germany"

        # Serial, uncached reference run.
        plain = Endpoint(mini_kg.graph)
        vgraph = VirtualSchemaGraph.bootstrap(plain, OBSERVATION_CLASS)
        reference = ExplorationSession(plain, vgraph)
        expected_candidates = [c.description for c in reference.synthesize(example)]
        expected_results = [reference.choose(i)
                            for i in range(len(expected_candidates))]
        expected_direct = plain.select(
            "SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }")

        with QueryService(mini_kg.endpoint(), workers=n_threads) as service:
            session_ids = [service.open_session(OBSERVATION_CLASS)
                           for _ in range(n_threads)]
            barrier = threading.Barrier(n_threads)

            def explore(worker: int):
                session = service.session(session_ids[worker])
                barrier.wait(timeout=30)
                candidates = session.synthesize(example)
                descriptions = [c.description for c in candidates]
                # Each worker picks a different candidate — mixed workload.
                index = worker % len(candidates)
                chosen = session.choose(index)
                # And issues a direct service query between session steps.
                direct = service.execute(
                    "SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }")
                return descriptions, index, chosen, direct

            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                futures = [pool.submit(explore, w) for w in range(n_threads)]
                done, not_done = wait(futures, timeout=180)
            assert not not_done
            for future in done:
                descriptions, index, chosen, direct = future.result()
                assert descriptions == expected_candidates
                assert chosen == expected_results[index]
                assert direct == expected_direct
            stats = service.stats()
            assert stats.errors == 0
            assert stats.open_sessions == n_threads
            # Heavy repetition across sessions → the cache must be earning.
            assert service.cache.hit_rate > 0.5

    def test_concurrent_queries_with_interleaved_mutations(self):
        """Readers under churn never see a stale cached result."""
        graph = small_graph(10)
        errors = []
        stop = threading.Event()

        with QueryService(graph, workers=4) as service:
            def reader():
                while not stop.is_set():
                    cached = service.execute(SELECT_ALL)
                    # The graph only grows during this test, so any cached
                    # answer smaller than the initial state is stale.
                    if len(cached) < 10:
                        errors.append(f"stale result: {len(cached)} rows")
                    if [v.name for v in cached.variables] != ["s", "o"]:
                        errors.append("variable mismatch")

            def mutator():
                for i in range(100, 140):
                    service.mutate(lambda g, i=i: g.add(triple(i)))
                    time.sleep(0.001)

            readers = [threading.Thread(target=reader) for _ in range(6)]
            writer = threading.Thread(target=mutator)
            for t in readers:
                t.start()
            writer.start()
            writer.join(timeout=60)
            stop.set()
            for t in readers:
                t.join(timeout=60)

            assert not errors
            # Quiesced: cached answer equals a fresh uncached evaluation.
            final = service.execute(SELECT_ALL)
            assert final == Endpoint(graph).select(SELECT_ALL)
            assert len(final) == 50
