"""Property-based tests for the triple index and the text index."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Literal
from repro.store import Graph, TextIndex, TripleIndex, tokenize
from repro.rdf.triple import Triple

small_ids = st.integers(min_value=0, max_value=6)
id_triples = st.tuples(small_ids, small_ids, small_ids)

# Operations: (op, triple) with op in add/remove.
operations = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), id_triples), max_size=60
)


def apply_operations(ops):
    """Run ops against the index and a reference Python set in lockstep."""
    index = TripleIndex()
    reference: set[tuple[int, int, int]] = set()
    for op, triple in ops:
        if op == "add":
            added = index.add(*triple)
            assert added == (triple not in reference)
            reference.add(triple)
        else:
            removed = index.remove(*triple)
            assert removed == (triple in reference)
            reference.discard(triple)
    return index, reference


class TestTripleIndexProperties:
    @settings(max_examples=60)
    @given(operations)
    def test_index_agrees_with_reference_set(self, ops):
        index, reference = apply_operations(ops)
        assert len(index) == len(reference)
        assert set(index.match(None, None, None)) == reference

    @settings(max_examples=60)
    @given(operations, id_triples)
    def test_every_pattern_shape_consistent(self, ops, probe):
        """count() == len(match()) == reference filter, for all 8 shapes."""
        index, reference = apply_operations(ops)
        s, p, o = probe
        for pattern in [
            (None, None, None), (s, None, None), (None, p, None),
            (None, None, o), (s, p, None), (s, None, o), (None, p, o),
            (s, p, o),
        ]:
            expected = {
                t for t in reference
                if all(b is None or t[i] == b for i, b in enumerate(pattern))
            }
            assert set(index.match(*pattern)) == expected
            assert index.count(*pattern) == len(expected)


words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
phrases = st.lists(words, min_size=1, max_size=4).map(" ".join)


class TestTextIndexProperties:
    @settings(max_examples=60)
    @given(st.lists(phrases, min_size=1, max_size=20), phrases)
    def test_index_agrees_with_scan(self, texts, keyword):
        """Inverted-index search === brute-force literal scan."""
        graph = Graph()
        predicate = IRI("http://example.org/label")
        for position, text in enumerate(texts):
            graph.add(Triple(IRI(f"http://example.org/e{position}"), predicate, Literal(text)))
        index = TextIndex.from_graph(graph)
        assert index.search(keyword) == index.scan_search(graph, keyword)

    @settings(max_examples=60)
    @given(st.lists(phrases, min_size=1, max_size=15))
    def test_every_indexed_phrase_is_findable(self, texts):
        graph = Graph()
        predicate = IRI("http://example.org/label")
        for position, text in enumerate(texts):
            graph.add(Triple(IRI(f"http://example.org/e{position}"), predicate, Literal(text)))
        index = TextIndex.from_graph(graph)
        for text in texts:
            assert Literal(text) in index.search(text)

    @settings(max_examples=60)
    @given(phrases)
    def test_tokenize_is_idempotent_on_joined_tokens(self, phrase):
        tokens = tokenize(phrase)
        assert tokenize(" ".join(tokens)) == tokens
