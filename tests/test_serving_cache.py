"""Serving cache: LRU/TTL mechanics, epoch invalidation, cached == uncached.

The load-bearing property is at the bottom: over a randomized interleaving
of queries and graph mutations, a cached endpoint and an uncached endpoint
sharing the same graph must return identical results at every step — i.e.
the epoch counter makes stale cache entries unreachable the moment the
graph changes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Literal
from repro.rdf.triple import Triple
from repro.serving import MISS, LRUCache, QueryCache, timeout_class
from repro.store import Dataset, Endpoint, Graph, GraphView


def triple(i: int, p: str = "p", o: str | None = None) -> Triple:
    return Triple(IRI(f"urn:s{i}"), IRI(f"urn:{p}"), Literal(o or str(i)))


def small_graph(n: int = 20) -> Graph:
    return Graph(triples=[triple(i) for i in range(n)])


# ---------------------------------------------------------------------------
# LRUCache mechanics
# ---------------------------------------------------------------------------


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("a") is MISS
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_falsy_values_are_cacheable(self):
        cache = LRUCache(maxsize=4)
        cache.put("ask", False)
        cache.put("empty", [])
        assert cache.get("ask") is False
        assert cache.get("empty") == []

    def test_lru_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a" → "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_overwrite_does_not_evict(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats.evictions == 0

    def test_ttl_expiry_with_injected_clock(self):
        now = [0.0]
        cache = LRUCache(maxsize=4, ttl=10.0, clock=lambda: now[0])
        cache.put("a", 1)
        now[0] = 5.0
        assert cache.get("a") == 1
        now[0] = 10.0
        assert cache.get("a") is MISS
        assert cache.stats.expirations == 1

    def test_invalidate_and_clear(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)
        with pytest.raises(ValueError):
            LRUCache(maxsize=1, ttl=0)

    def test_hit_rate(self):
        cache = LRUCache(maxsize=4)
        assert cache.stats.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestQueryCacheKeys:
    def test_timeout_class_buckets(self):
        assert timeout_class(None) == "none"
        assert timeout_class(1.5) == "1.500"
        assert timeout_class(1.5001) == "1.500"
        assert timeout_class(2.0) != timeout_class(None)

    def test_result_keys_distinguish_kind_epoch_timeout(self):
        cache = QueryCache()
        base = cache.result_key("Q", 1, None, "select")
        assert cache.result_key("Q", 2, None, "select") != base
        assert cache.result_key("Q", 1, None, "ask") != base
        assert cache.result_key("Q", 1, 5.0, "select") != base
        assert cache.result_key("Q", 1, None, "select") == base


# ---------------------------------------------------------------------------
# Epoch counters
# ---------------------------------------------------------------------------


class TestEpoch:
    def test_add_bumps_duplicate_does_not(self):
        g = Graph()
        assert g.epoch == 0
        assert g.add(triple(1))
        assert g.epoch == 1
        assert not g.add(triple(1))  # duplicate
        assert g.epoch == 1

    def test_remove_bumps_absent_does_not(self):
        g = Graph(triples=[triple(1)])
        before = g.epoch
        assert g.remove(triple(1))
        assert g.epoch == before + 1
        assert not g.remove(triple(99))
        assert g.epoch == before + 1

    def test_bulk_load_bumps(self):
        g = Graph()
        g.add_all(triple(i) for i in range(7))
        assert g.epoch == 7

    def test_graph_view_epoch_aggregates_members(self):
        a, b = small_graph(3), small_graph(3)
        view = GraphView([a, b])
        before = view.epoch
        b.add(triple(99))
        assert view.epoch == before + 1

    def test_dataset_epoch_covers_named_graphs(self):
        ds = Dataset()
        before = ds.epoch
        ds.graph(IRI("urn:g1")).add(triple(1))
        ds.default_graph.add(triple(2))
        assert ds.epoch == before + 2


# ---------------------------------------------------------------------------
# Endpoint + cache integration
# ---------------------------------------------------------------------------

SELECT_ALL = "SELECT ?s ?o WHERE { ?s <urn:p> ?o }"
ASK_SOME = "ASK { <urn:s3> <urn:p> ?o }"
CONSTRUCT_COPY = "CONSTRUCT { ?s <urn:q> ?o } WHERE { ?s <urn:p> ?o }"


class TestEndpointCache:
    def test_select_hit_returns_equal_independent_result(self):
        ep = Endpoint(small_graph(), cache=QueryCache())
        first = ep.select(SELECT_ALL)
        second = ep.select(SELECT_ALL)
        assert first == second
        assert ep.stats.cache_hits == 1
        # Mutating the returned copy must not poison the cache.
        second.rows.clear()
        assert ep.select(SELECT_ALL) == first

    def test_ask_and_construct_are_cached(self):
        ep = Endpoint(small_graph(), cache=QueryCache())
        assert ep.ask(ASK_SOME) is ep.ask(ASK_SOME) is True
        g1 = ep.construct(CONSTRUCT_COPY)
        g2 = ep.construct(CONSTRUCT_COPY)
        assert ep.stats.cache_hits == 2
        assert sorted(g1.triples()) == sorted(g2.triples())
        # Each hit materializes a private graph.
        g2.add(triple(500, p="q"))
        assert sorted(ep.construct(CONSTRUCT_COPY).triples()) == sorted(g1.triples())

    def test_construct_counts_its_own_counter(self):
        ep = Endpoint(small_graph())
        ep.construct(CONSTRUCT_COPY)
        assert ep.stats.construct_queries == 1
        assert ep.stats.select_queries == 0
        assert ep.stats.total_queries == 1
        ep.stats.reset()
        assert ep.stats.construct_queries == 0
        assert ep.stats.total_queries == 0

    def test_mutation_invalidates_select(self):
        g = small_graph()
        ep = Endpoint(g, cache=QueryCache())
        before = ep.select(SELECT_ALL)
        g.add(triple(100))
        after = ep.select(SELECT_ALL)
        assert len(after) == len(before) + 1

    def test_mutation_invalidates_ask_and_construct(self):
        g = Graph(triples=[triple(3)])
        ep = Endpoint(g, cache=QueryCache())
        assert ep.ask(ASK_SOME) is True
        assert len(ep.construct(CONSTRUCT_COPY)) == 1
        g.remove(triple(3))
        assert ep.ask(ASK_SOME) is False
        assert len(ep.construct(CONSTRUCT_COPY)) == 0

    def test_keyword_resolution_cached_by_epoch(self):
        g = small_graph()
        ep = Endpoint(g, cache=QueryCache())
        first = ep.resolve_keyword("3")
        assert ep.resolve_keyword("3") == first
        assert ep.stats.cache_hits == 1
        g.add(triple(200, o="3"))
        ep.refresh_text_index()
        wider = ep.resolve_keyword("3")
        assert len(wider) == len(first) + 1

    def test_uncacheable_graph_without_epoch_still_works(self):
        class Bare:
            """Graph stand-in with no epoch attribute."""

            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                if name == "epoch":
                    raise AttributeError(name)
                return getattr(self._inner, name)

        ep = Endpoint(Bare(small_graph()), cache=QueryCache())
        assert ep.select(SELECT_ALL) == ep.select(SELECT_ALL)
        assert ep.stats.cache_hits == 0  # nothing cached, nothing wrong


# ---------------------------------------------------------------------------
# Property: cached and uncached endpoints agree under arbitrary workloads
# ---------------------------------------------------------------------------

QUERY_POOL = (
    SELECT_ALL,
    ASK_SOME,
    "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s",
    "SELECT DISTINCT ?p WHERE { ?s ?p ?o }",
    "ASK { <urn:missing> <urn:p> ?o }",
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("query"), st.integers(0, len(QUERY_POOL) - 1)),
        st.tuples(st.just("add"), st.integers(0, 12)),
        st.tuples(st.just("remove"), st.integers(0, 12)),
    ),
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_cached_equals_uncached_over_random_workloads(ops):
    graph = small_graph(8)
    cached = Endpoint(graph, cache=QueryCache(max_results=16))
    uncached = Endpoint(graph)
    for op, arg in ops:
        if op == "add":
            graph.add(triple(arg))
        elif op == "remove":
            graph.remove(triple(arg))
        else:
            text = QUERY_POOL[arg]
            assert cached.query(text) == uncached.query(text)
    # Final sweep: every pool query agrees after all mutations.
    for text in QUERY_POOL:
        assert cached.query(text) == uncached.query(text)
