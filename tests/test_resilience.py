"""Unit tests for the resilience subsystem (fast, fully deterministic).

Covers the retry policy, the circuit breaker state machine, the fault
injector, the resilient endpoint decorator, the default-timeout sentinel,
thread-safe endpoint stats, and the RWLock writer-preference guarantee.
The seeded randomized replay of the same machinery lives in the `chaos`
suite (``tests/test_chaos.py``), which is excluded from the tier-1 run.
"""

import threading

import pytest

from repro.errors import (
    CircuitOpenError,
    EndpointUnavailableError,
    QueryEvaluationError,
    QueryTimeoutError,
    TransientError,
)
from repro.rdf import IRI, Literal, Triple, literal_from_python
from repro.sparql import parse_query
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Fault,
    FaultInjector,
    FaultPlan,
    ResilientEndpoint,
    RetryPolicy,
    try_ask_batch,
)
from repro.serving.executor import RWLock
from repro.store import Endpoint, EndpointStats, Graph

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


def small_graph():
    g = Graph()
    for index in range(6):
        g.add(Triple(iri(f"obs{index}"), iri("dim"), iri(f"m{index % 2}")))
        g.add(Triple(iri(f"obs{index}"), iri("val"), literal_from_python(index * 10)))
    g.add(Triple(iri("m0"), iri("label"), Literal("Member Zero")))
    return g


SELECT_Q = f"SELECT ?m WHERE {{ ?o <{EX}dim> ?m }}"
ASK_TRUE = f"ASK {{ ?o <{EX}dim> <{EX}m0> }}"
ASK_FALSE = f"ASK {{ ?o <{EX}dim> <{EX}nope> }}"


@pytest.fixture
def endpoint():
    return Endpoint(small_graph())


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# Error hierarchy


class TestErrorHierarchy:
    def test_transient_branch(self):
        assert issubclass(EndpointUnavailableError, TransientError)
        assert issubclass(EndpointUnavailableError, QueryEvaluationError)
        assert issubclass(CircuitOpenError, TransientError)
        assert not issubclass(QueryTimeoutError, TransientError)


# ---------------------------------------------------------------------------
# RetryPolicy


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(TransientError("x"))
        assert policy.is_transient(EndpointUnavailableError("x"))
        assert not policy.is_transient(QueryTimeoutError("x"))
        assert not policy.is_transient(ValueError("x"))
        # Retrying against an open breaker defeats its fail-fast purpose.
        assert not policy.is_transient(CircuitOpenError("x"))

    def test_retry_timeouts_opt_in(self):
        policy = RetryPolicy(retry_timeouts=True)
        assert policy.is_transient(QueryTimeoutError("x"))
        assert not policy.is_transient(CircuitOpenError("x"))

    def test_delay_deterministic_and_bounded(self):
        policy = RetryPolicy(max_retries=4, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.2, seed=7)
        schedule = policy.delays()
        assert schedule == policy.delays()  # pure function of (seed, attempt)
        assert len(schedule) == 4
        for attempt, delay in enumerate(schedule):
            raw = min(0.5, 0.1 * 2.0 ** attempt)
            assert raw * 0.8 <= delay <= raw * 1.2
        assert policy.delays(salt=1) != schedule  # salt decorrelates

    def test_no_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0,
                             jitter=0.0)
        assert policy.delays() == [0.1, 0.2, 0.4]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)


# ---------------------------------------------------------------------------
# CircuitBreaker


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        defaults = dict(failure_rate=0.5, window=8, min_calls=4,
                        recovery_timeout=10.0, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def run_failures(self, breaker, n):
        for _ in range(n):
            breaker.acquire()
            breaker.record_failure()

    def test_trips_at_failure_rate(self):
        breaker, _ = self.make()
        self.run_failures(breaker, 3)
        assert breaker.state == CLOSED  # below min_calls
        self.run_failures(breaker, 1)
        assert breaker.state == OPEN
        assert breaker.stats.trips == 1

    def test_successes_keep_it_closed(self):
        breaker, _ = self.make()
        for _ in range(20):
            breaker.acquire()
            breaker.record_success()
        self.run_failures(breaker, 3)
        assert breaker.state == CLOSED  # 3/8 failures < 0.5 in the window

    def test_open_sheds_with_retry_hint(self):
        breaker, clock = self.make()
        self.run_failures(breaker, 4)
        with pytest.raises(CircuitOpenError) as exc_info:
            breaker.acquire()
        assert "shed" in str(exc_info.value)
        assert breaker.stats.rejections == 1
        clock.advance(5.0)
        with pytest.raises(CircuitOpenError):
            breaker.acquire()  # still open: recovery timeout not elapsed

    def test_half_open_probe_then_close(self):
        breaker, clock = self.make()
        self.run_failures(breaker, 4)
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.acquire()  # the probe slot
        with pytest.raises(CircuitOpenError):
            breaker.acquire()  # only one probe admitted
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.stats.closes == 1
        # The window was cleared: old failures don't count anymore.
        self.run_failures(breaker, 3)
        assert breaker.state == CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make()
        self.run_failures(breaker, 4)
        clock.advance(10.0)
        breaker.acquire()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.stats.trips == 2
        clock.advance(9.0)
        assert breaker.state == OPEN  # recovery clock restarted at reopen
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_multi_probe_close(self):
        breaker, clock = self.make(half_open_probes=2)
        self.run_failures(breaker, 4)
        clock.advance(10.0)
        breaker.acquire()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one of two probes succeeded
        breaker.acquire()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_event_log_trajectory(self):
        breaker, clock = self.make()
        self.run_failures(breaker, 4)
        with pytest.raises(CircuitOpenError):
            breaker.acquire()
        clock.advance(10.0)
        breaker.acquire()
        breaker.record_success()
        assert [event.transition for event in breaker.events] == [
            "trip", "reject", "probe", "close",
        ]

    def test_reset(self):
        breaker, _ = self.make()
        self.run_failures(breaker, 4)
        breaker.reset()
        assert breaker.state == CLOSED
        breaker.acquire()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_rate=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)


# ---------------------------------------------------------------------------
# FaultPlan / FaultInjector


class TestFaultPlan:
    def test_random_is_deterministic(self):
        calls = [(index, "select") for index in range(50)]
        plans = [FaultPlan.random(3, timeout_rate=0.2, transient_rate=0.2,
                                  latency_rate=0.2) for _ in range(2)]
        decisions = [[plan.fault_for(*call) for call in calls] for plan in plans]
        assert decisions[0] == decisions[1]
        kinds = {fault.kind for fault in decisions[0]}
        assert "ok" in kinds and len(kinds) > 1

    def test_schedule_pins_faults(self):
        plan = FaultPlan.from_schedule({1: "timeout", 3: Fault("transient")})
        assert plan.fault_for(0, "ask").kind == "ok"
        assert plan.fault_for(1, "ask").kind == "timeout"
        assert plan.fault_for(3, "select").kind == "transient"

    def test_ops_filter(self):
        plan = FaultPlan.from_schedule({0: "timeout"}, ops=["keyword"])
        assert plan.fault_for(0, "select").kind == "ok"
        assert plan.fault_for(0, "keyword").kind == "timeout"

    def test_outage_window_forces_transient(self):
        plan = FaultPlan(lambda index, op: Fault("ok"), outages=[(2, 5)])
        assert plan.fault_for(1, "ask").kind == "ok"
        assert all(plan.fault_for(i, "ask").kind == "transient" for i in (2, 3, 4))
        assert plan.fault_for(5, "ask").kind == "ok"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("explosion")


class TestFaultInjector:
    def test_injects_per_schedule(self, endpoint):
        plan = FaultPlan.from_schedule({0: "timeout", 1: "transient"})
        injector = FaultInjector(endpoint, plan)
        with pytest.raises(QueryTimeoutError):
            injector.select(SELECT_Q)
        with pytest.raises(EndpointUnavailableError):
            injector.ask(ASK_TRUE)
        assert injector.ask(ASK_TRUE) is True  # index 2: healthy
        assert [event.kind for event in injector.events] == [
            "timeout", "transient", "ok",
        ]
        assert injector.faults_injected() == 2

    def test_latency_uses_injected_sleep(self, endpoint):
        slept = []
        plan = FaultPlan.from_schedule({0: Fault("latency", latency=0.25)})
        injector = FaultInjector(endpoint, plan, sleep=slept.append)
        assert len(injector.select(SELECT_Q)) == 6
        assert slept == [0.25]

    def test_query_dispatch_and_passthrough(self, endpoint):
        injector = FaultInjector(endpoint, FaultPlan.healthy())
        assert injector.query(ASK_TRUE) is True
        assert len(injector.query(SELECT_Q)) == 6
        assert injector.stats is endpoint.stats
        assert injector.graph is endpoint.graph
        assert injector.default_timeout is None

    def test_disarm_is_invisible(self, endpoint):
        plan = FaultPlan.from_schedule({0: "timeout"})
        injector = FaultInjector(endpoint, plan)
        injector.disarm()
        assert injector.ask(ASK_TRUE) is True  # not injected, not counted
        assert injector.events == []
        injector.arm()
        with pytest.raises(QueryTimeoutError):
            injector.ask(ASK_TRUE)  # schedule resumes at call index 0


# ---------------------------------------------------------------------------
# ResilientEndpoint


def resilient(endpoint, schedule, **kwargs):
    """A resilient endpoint over an injector with a pinned schedule."""
    injector = FaultInjector(endpoint, FaultPlan.from_schedule(schedule))
    kwargs.setdefault("sleep", lambda _s: None)
    return ResilientEndpoint(injector, **kwargs)


class TestResilientEndpoint:
    def test_retry_recovers_transient(self, endpoint):
        guarded = resilient(endpoint, {0: "transient"},
                            retry=RetryPolicy(max_retries=2, jitter=0.0))
        assert len(guarded.select(SELECT_Q)) == 6
        snap = guarded.resilience.snapshot()
        assert (snap.calls, snap.retries, snap.recovered, snap.giveups) == (1, 1, 1, 0)

    def test_budget_exhaustion_reraises(self, endpoint):
        guarded = resilient(endpoint, {0: "transient", 1: "transient"},
                            retry=RetryPolicy(max_retries=1, jitter=0.0))
        with pytest.raises(EndpointUnavailableError):
            guarded.select(SELECT_Q)
        snap = guarded.resilience.snapshot()
        assert (snap.retries, snap.recovered, snap.giveups) == (1, 0, 1)

    def test_no_policy_means_no_retries(self, endpoint):
        guarded = resilient(endpoint, {0: "transient"})
        with pytest.raises(EndpointUnavailableError):
            guarded.select(SELECT_Q)
        assert guarded.resilience.snapshot().retries == 0

    def test_timeouts_not_retried_by_default(self, endpoint):
        guarded = resilient(endpoint, {0: "timeout"},
                            retry=RetryPolicy(max_retries=3, jitter=0.0))
        with pytest.raises(QueryTimeoutError):
            guarded.select(SELECT_Q)
        assert guarded.resilience.snapshot().retries == 0

    def test_timeouts_retried_on_opt_in(self, endpoint):
        guarded = resilient(
            endpoint, {0: "timeout"},
            retry=RetryPolicy(max_retries=1, jitter=0.0, retry_timeouts=True),
        )
        assert len(guarded.select(SELECT_Q)) == 6
        assert guarded.resilience.snapshot().recovered == 1

    def test_backoff_schedule_honored(self, endpoint):
        slept = []
        injector = FaultInjector(
            endpoint,
            FaultPlan.from_schedule({0: "transient", 1: "transient"}),
        )
        policy = RetryPolicy(max_retries=2, base_delay=0.1, multiplier=2.0,
                             jitter=0.0)
        guarded = ResilientEndpoint(injector, retry=policy, sleep=slept.append)
        guarded.select(SELECT_Q)
        assert slept == [0.1, 0.2]

    def test_breaker_trips_and_sheds(self, endpoint):
        schedule = {index: "transient" for index in range(8)}
        breaker = CircuitBreaker(failure_rate=0.5, window=8, min_calls=4,
                                 recovery_timeout=100.0, clock=FakeClock())
        guarded = resilient(endpoint, schedule, breaker=breaker)
        for _ in range(4):
            with pytest.raises(EndpointUnavailableError):
                guarded.ask(ASK_TRUE)
        with pytest.raises(CircuitOpenError):
            guarded.ask(ASK_TRUE)
        assert breaker.state == OPEN
        assert guarded.resilience.snapshot().breaker_rejections == 1
        # The shed call never reached the injector.
        assert len(guarded.events) == 4

    def test_breaker_recovers_through_probe(self, endpoint):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_rate=0.5, window=8, min_calls=2,
                                 recovery_timeout=5.0, clock=clock)
        guarded = resilient(endpoint, {0: "transient", 1: "transient"},
                            breaker=breaker)
        for _ in range(2):
            with pytest.raises(EndpointUnavailableError):
                guarded.ask(ASK_TRUE)
        assert breaker.state == OPEN
        clock.advance(5.0)
        assert guarded.ask(ASK_TRUE) is True  # the probe, index 2: healthy
        assert breaker.state == CLOSED
        transitions = [event.transition for event in breaker.events]
        assert transitions == ["trip", "probe", "close"]

    def test_deterministic_error_counts_as_breaker_success(self, endpoint):
        breaker = CircuitBreaker(failure_rate=0.5, window=4, min_calls=2,
                                 clock=FakeClock())
        guarded = ResilientEndpoint(
            FaultInjector(endpoint, FaultPlan.healthy()), breaker=breaker,
        )
        for _ in range(6):
            with pytest.raises(Exception):
                guarded.query("SELECT ?x WHERE { broken", timeout=None)
        assert breaker.state == CLOSED  # endpoint is reachable and healthy

    def test_serve_stale_answers_while_open(self, endpoint):
        clock = FakeClock()
        # 0.6 with min_calls=2: the initial success plus two failures trips
        # (2/3 >= 0.6), so both injected transients surface before the trip.
        breaker = CircuitBreaker(failure_rate=0.6, window=4, min_calls=2,
                                 recovery_timeout=1000.0, clock=clock)
        guarded = resilient(endpoint, {1: "transient", 2: "transient"},
                            breaker=breaker, serve_stale=True)
        fresh = guarded.select(SELECT_Q)  # index 0: healthy, populates stale tier
        for _ in range(2):
            with pytest.raises(EndpointUnavailableError):
                guarded.select(SELECT_Q)
        assert breaker.state == OPEN
        stale = guarded.select(SELECT_Q)  # shed, answered from the stale tier
        assert list(stale.rows) == list(fresh.rows)
        assert stale is not fresh  # defensive copy
        snap = guarded.resilience.snapshot()
        assert snap.breaker_rejections == 1
        assert snap.stale_served == 1
        with pytest.raises(CircuitOpenError):
            guarded.ask(ASK_FALSE)  # never succeeded -> nothing stale to serve

    def test_is_non_empty_passes_through(self, endpoint):
        guarded = resilient(endpoint, {})
        assert guarded.is_non_empty(parse_query(SELECT_Q))


# ---------------------------------------------------------------------------
# try_ask_batch (partial-failure semantics)


class TestTryAskBatch:
    QUERIES = [ASK_TRUE, ASK_FALSE, ASK_TRUE]

    def test_clean_batch_is_not_degraded(self, endpoint):
        verdicts, degraded = try_ask_batch(endpoint, self.QUERIES)
        assert verdicts == [True, False, True]
        assert not degraded

    def test_batch_fault_falls_back_per_candidate(self, endpoint):
        # Call 0 is the batch round-trip; calls 1..3 are the fallbacks.
        injector = FaultInjector(
            endpoint, FaultPlan.from_schedule({0: "transient"}),
        )
        verdicts, degraded = try_ask_batch(injector, self.QUERIES)
        assert verdicts == [True, False, True]  # aligned and complete
        assert degraded

    def test_per_candidate_fault_yields_none_in_place(self, endpoint):
        # Batch fails, then the *second* fallback ask fails too.
        injector = FaultInjector(
            endpoint, FaultPlan.from_schedule({0: "timeout", 2: "timeout"}),
        )
        verdicts, degraded = try_ask_batch(injector, self.QUERIES)
        assert verdicts == [True, None, True]  # undecided, never guessed
        assert degraded

    def test_empty_input(self, endpoint):
        assert try_ask_batch(endpoint, []) == ([], False)

    def test_endpoint_without_ask_batch(self, endpoint):
        class AskOnly:
            def ask(self, query, timeout=None):
                return endpoint.ask(query)

        verdicts, degraded = try_ask_batch(AskOnly(), self.QUERIES)
        assert verdicts == [True, False, True]
        assert not degraded


# ---------------------------------------------------------------------------
# Default-timeout sentinel (satellite: explicit None / 0 must be honored)


class TestTimeoutSentinel:
    def test_default_applies_when_omitted(self):
        endpoint = Endpoint(small_graph(), default_timeout=0)
        with pytest.raises(QueryTimeoutError):
            endpoint.select(SELECT_Q)

    def test_explicit_none_disables_default(self):
        endpoint = Endpoint(small_graph(), default_timeout=0)
        assert len(endpoint.select(SELECT_Q, timeout=None)) == 6

    def test_explicit_zero_overrides_no_default(self):
        endpoint = Endpoint(small_graph())  # no default timeout
        with pytest.raises(QueryTimeoutError):
            endpoint.select(SELECT_Q, timeout=0)

    def test_ask_and_batch_honor_sentinel(self):
        endpoint = Endpoint(small_graph(), default_timeout=0)
        assert endpoint.ask(ASK_TRUE, timeout=None) is True
        assert endpoint.ask_batch([ASK_TRUE, ASK_FALSE], timeout=None) == [True, False]
        with pytest.raises(QueryTimeoutError):
            endpoint.ask(ASK_TRUE)


# ---------------------------------------------------------------------------
# EndpointStats thread safety (satellite)


class TestEndpointStatsConcurrency:
    def test_concurrent_adds_are_not_lost(self):
        stats = EndpointStats()
        n_threads, n_increments = 8, 2000

        def hammer():
            for _ in range(n_increments):
                stats.add("select_queries")
                stats.add("cache_hits")

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.select_queries == n_threads * n_increments
        assert stats.cache_hits == n_threads * n_increments

    def test_snapshot_is_consistent_under_writes(self):
        stats = EndpointStats()
        stop = threading.Event()
        torn = []

        def writer():
            # select_queries and ask_queries move together inside one
            # locked add-pair via reset+refill; use add() twice under
            # contention and rely on snapshot never reading mid-reset.
            while not stop.is_set():
                stats.add("select_queries")
                stats.reset()

        def reader():
            while not stop.is_set():
                snap = stats.snapshot()
                if snap.select_queries < 0:
                    torn.append(snap)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        stop_timer = threading.Timer(0.2, stop.set)
        stop_timer.start()
        for thread in threads:
            thread.join()
        stop_timer.cancel()
        assert not torn
        stats.reset()
        assert stats.snapshot().total_queries == 0

    def test_snapshot_excludes_lock(self):
        snap = EndpointStats().snapshot()
        assert snap.select_queries == 0
        snap.add("select_queries")  # the copy has its own working lock
        assert snap.select_queries == 1


# ---------------------------------------------------------------------------
# RWLock writer preference (satellite)


class TestRWLockWriterPreference:
    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        order = []
        reader1_in = threading.Event()
        release_reader1 = threading.Event()
        late_reader_entered = threading.Event()

        def first_reader():
            with lock.read_locked():
                order.append("reader1-in")
                reader1_in.set()
                release_reader1.wait(timeout=5)

        def writer():
            with lock.write_locked():
                order.append("writer-in")

        def late_reader():
            with lock.read_locked():
                order.append("reader2-in")
                late_reader_entered.set()

        t_reader = threading.Thread(target=first_reader)
        t_writer = threading.Thread(target=writer)
        t_reader.start()
        assert reader1_in.wait(timeout=5)  # reader1 holds the lock
        t_writer.start()
        while lock._writers_waiting == 0:  # writer queued behind reader1
            pass
        t_late = threading.Thread(target=late_reader)
        t_late.start()
        # Writer preference: with reader1 still holding and the writer
        # queued, reader2 must not slip in ahead of the writer.
        assert not late_reader_entered.wait(timeout=0.15)
        release_reader1.set()
        for thread in (t_reader, t_writer, t_late):
            thread.join(timeout=5)
        assert order == ["reader1-in", "writer-in", "reader2-in"]

    def test_stress_no_starvation_and_exclusion(self):
        lock = RWLock()
        state = {"value": 0}
        violations = []
        n_writers, n_readers, rounds = 3, 6, 60

        def writer(seed):
            for _ in range(rounds):
                with lock.write_locked():
                    before = state["value"]
                    state["value"] = before + 1  # non-atomic without the lock

        def reader(seed):
            for _ in range(rounds):
                with lock.read_locked():
                    value = state["value"]
                    if value != state["value"]:  # a writer ran concurrently
                        violations.append(value)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(n_writers)]
        threads += [threading.Thread(target=reader, args=(i,)) for i in range(n_readers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)  # no deadlock
        assert not violations
        assert state["value"] == n_writers * rounds  # no lost writer updates
