"""Exploration over a dataset of named graphs (the paper's deployment).

The paper's server is configured with "the address of the SPARQL endpoint,
the list of named graphs to query, and the RDF class identifying the
observations".  These tests split a generated KG across named graphs,
expose the union view through the endpoint, and run the full pipeline on
top — verifying that nothing in the core assumes a single physical graph.
"""

import pytest

from repro.core import ExplorationSession, VirtualSchemaGraph, reolap
from repro.qb import CubeBuilder, OBSERVATION_CLASS, TYPE
from repro.rdf import IRI, Quad
from repro.store import Dataset, Endpoint

from tests.conftest import mini_schema

SCHEMA_GRAPH = IRI("http://example.org/graphs/schema")
OBS_A = IRI("http://example.org/graphs/observations-2013")
OBS_B = IRI("http://example.org/graphs/observations-rest")


@pytest.fixture(scope="module")
def dataset():
    """The mini cube split: schema triples and two observation partitions."""
    kg = CubeBuilder(mini_schema(), seed=9).build(100)
    observations = set(kg.graph.subjects(TYPE, OBSERVATION_CLASS))
    split = Dataset()
    for index, triple in enumerate(sorted(kg.graph.triples())):
        if triple.s in observations:
            target = OBS_A if hash(triple.s.value) % 2 == 0 else OBS_B
        else:
            target = SCHEMA_GRAPH
        split.add(Quad(triple.s, triple.p, triple.o, target))
    return kg, split


class TestNamedGraphExploration:
    def test_split_preserves_triples(self, dataset):
        kg, split = dataset
        assert len(split) == len(kg.graph)
        assert len(split.graph_names()) == 3

    def test_union_view_bootstraps(self, dataset):
        _kg, split = dataset
        endpoint = Endpoint(split.union_view())
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        assert vgraph.observation_count == 100
        assert vgraph.n_levels == 5

    def test_full_exploration_over_union(self, dataset):
        _kg, split = dataset
        endpoint = Endpoint(split.union_view())
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        session = ExplorationSession(endpoint, vgraph)
        session.synthesize("Germany", "2014")
        results = session.choose(0)
        assert len(results) > 0
        refined = session.apply(session.refinements("disaggregate")[0])
        assert session.query.anchor_row_indexes(refined)

    def test_partial_graph_selection_changes_results(self, dataset):
        """Querying only one observation partition sees fewer observations."""
        _kg, split = dataset
        full = Endpoint(split.union_view([SCHEMA_GRAPH, OBS_A, OBS_B],
                                         include_default=False))
        partial = Endpoint(split.union_view([SCHEMA_GRAPH, OBS_A],
                                            include_default=False))
        count = f"SELECT (COUNT(?o) AS ?n) WHERE {{ ?o a {OBSERVATION_CLASS.n3()} }}"
        full_n = int(full.select(count).rows[0][0].lexical)
        partial_n = int(partial.select(count).rows[0][0].lexical)
        assert full_n == 100
        assert 0 < partial_n < full_n

    def test_union_results_match_single_graph(self, dataset):
        kg, split = dataset
        union_endpoint = Endpoint(split.union_view())
        single_endpoint = Endpoint(kg.graph)
        union_vgraph = VirtualSchemaGraph.bootstrap(union_endpoint, OBSERVATION_CLASS)
        single_vgraph = VirtualSchemaGraph.bootstrap(single_endpoint, OBSERVATION_CLASS)
        union_queries = reolap(union_endpoint, union_vgraph, ("Germany", "2014"))
        single_queries = reolap(single_endpoint, single_vgraph, ("Germany", "2014"))
        assert [q.sparql() for q in union_queries] == [q.sparql() for q in single_queries]
        for uq, sq in zip(union_queries, single_queries):
            assert union_endpoint.select(uq.to_select()) == single_endpoint.select(sq.to_select())

    def test_nquads_roundtrip_preserves_exploration(self, dataset, tmp_path):
        _kg, split = dataset
        path = tmp_path / "split.nq"
        path.write_text(split.to_nquads(), encoding="utf-8")
        restored = Dataset.from_nquads(path.read_text(encoding="utf-8"))
        endpoint = Endpoint(restored.union_view())
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        assert reolap(endpoint, vgraph, ("Syria",))
