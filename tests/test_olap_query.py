"""Tests for the OLAP query model and its SPARQL assembly."""

import pytest

from repro.core import reolap
from repro.rdf import IRI, Variable
from repro.sparql import parse_query

MINI = "http://example.org/mini/"


def prop(name):
    return IRI(MINI + "prop/" + name)


@pytest.fixture()
def base_query(mini_endpoint, mini_vgraph):
    queries = reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"))
    by_dims = {
        frozenset(d.level.dimension_predicate for d in q.dimensions): q for q in queries
    }
    return by_dims[frozenset({prop("country_of_destination"), prop("ref_period")})]


class TestAssembly:
    def test_group_by_matches_dimensions(self, base_query):
        select = base_query.to_select()
        assert set(select.group_by) == set(base_query.group_variables)

    def test_observation_typed(self, base_query):
        patterns = base_query.to_select().where.triple_patterns()
        assert any(p.p.value.endswith("#type") for p in patterns)

    def test_chain_deduplication(self, mini_vgraph, base_query):
        """Adding a level sharing a prefix emits the shared pattern once."""
        continent = mini_vgraph.level(
            (prop("country_of_destination"), prop("in_continent"))
        )
        extended = base_query.with_dimension(continent)
        patterns = extended.to_select().where.triple_patterns()
        base_edges = [
            p for p in patterns
            if p.p == prop("country_of_destination")
        ]
        assert len(base_edges) == 1

    def test_with_dimension_rejects_duplicates(self, mini_vgraph, base_query):
        level = base_query.dimensions[0].level
        with pytest.raises(ValueError):
            base_query.with_dimension(level)

    def test_limit_passthrough(self, base_query):
        assert base_query.to_select(limit=1).limit == 1

    def test_sparql_text_is_parseable(self, base_query):
        parse_query(base_query.sparql())


class TestAnchors:
    def test_anchor_rows_found(self, mini_endpoint, base_query):
        results = mini_endpoint.select(base_query.to_select())
        indexes = base_query.anchor_row_indexes(results)
        assert indexes
        germany = {a.member for a in base_query.anchors if a.keyword == "Germany"}
        column = results.index_of(base_query.dimensions[0].variable)
        for index in indexes:
            assert results.rows[index][column] in germany

    def test_all_rows_match_without_anchors(self, mini_endpoint, base_query):
        anchorless = base_query.with_anchors(())
        results = mini_endpoint.select(anchorless.to_select())
        assert anchorless.anchor_row_indexes(results) == list(range(len(results)))


class TestValidation:
    def test_requires_dimension_and_measure(self, base_query):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(base_query, dimensions=())
        with pytest.raises(ValueError):
            dataclasses.replace(base_query, measures=())

    def test_measure_aliases(self, base_query):
        measure = base_query.measures[0]
        aliases = dict(measure.aliases())
        assert set(aliases) == {"SUM", "MIN", "MAX", "AVG"}
        assert aliases["SUM"] == Variable("sum_num_applicants")

    def test_dimension_lookup(self, base_query):
        variable = base_query.dimensions[0].variable
        assert base_query.dimension_for_variable(variable) is base_query.dimensions[0]
        with pytest.raises(KeyError):
            base_query.dimension_for_variable(Variable("nope"))

    def test_has_dimension_predicate(self, base_query):
        assert base_query.has_dimension_predicate(prop("ref_period"))
        assert not base_query.has_dimension_predicate(prop("country_of_origin"))
