"""End-to-end integration tests: the whole stack over every dataset.

Each test drives the full pipeline — generate → validate → bootstrap →
synthesize → execute → refine — asserting the cross-module invariants the
paper's Section 5.3/6 state: completeness of synthesis, non-empty and
example-containing results, and refinement preservation of the example.
"""

import pytest

from repro.core import (
    ExplorationSession,
    VirtualSchemaGraph,
    account_paths,
    insight_summary,
    profile,
    reolap,
)
from repro.datasets import generate_dbpedia, generate_eurostat, generate_production
from repro.qb import OBSERVATION_CLASS, validate_cube
from repro.sparql import parse_query

DATASETS = {
    "eurostat": lambda: generate_eurostat(n_observations=400, scale=0.12, seed=51),
    "production": lambda: generate_production(n_observations=400, scale=0.008, seed=52),
    "dbpedia": lambda: generate_dbpedia(n_observations=300, scale=0.012, seed=53),
}


@pytest.fixture(scope="module", params=sorted(DATASETS))
def stack(request):
    kg = DATASETS[request.param]()
    endpoint = kg.endpoint()
    vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
    return request.param, kg, endpoint, vgraph


class TestFullPipeline:
    def test_generated_kg_is_valid(self, stack):
        _name, kg, _endpoint, _vgraph = stack
        report = validate_cube(kg.graph, kg.schema)
        assert report.ok, report.summary()

    def test_crawler_matches_declared_schema(self, stack):
        _name, kg, _endpoint, vgraph = stack
        assert vgraph.n_levels == kg.schema.n_levels
        # The crawler counts members *observed* from the observations; at
        # small observation counts this is a subset of the generated pool.
        assert 0 < vgraph.n_members <= kg.schema.n_members
        assert vgraph.observation_count == kg.n_observations

    def test_profile_consistent_with_vgraph(self, stack):
        _name, _kg, _endpoint, vgraph = stack
        prof = profile(vgraph)
        assert prof.n_levels == vgraph.n_levels
        assert prof.n_members == vgraph.n_members

    def test_every_base_member_is_synthesizable(self, stack):
        """Completeness: any *observed* base member bootstraps a query."""
        _name, kg, endpoint, vgraph = stack
        labels = {
            member.iri: member.label
            for dimension in kg.schema.dimensions
            for member in kg.members_of(dimension.name, dimension.base_level.name)
        }
        checked = 0
        for base in vgraph.base_levels():
            member_iri = base.sample_members[0]
            queries = reolap(endpoint, vgraph, (labels[member_iri],))
            assert queries, f"no query for {labels[member_iri]!r}"
            for query in queries:
                results = endpoint.select(query.to_select())
                assert len(results) > 0
                assert query.anchor_row_indexes(results)
            checked += 1
        assert checked == len(vgraph.base_levels())

    def test_generated_sparql_is_portable(self, stack):
        _name, kg, endpoint, vgraph = stack
        member = _observed_member(kg, vgraph, 1)
        for query in reolap(endpoint, vgraph, (member.label,)):
            text = query.sparql()
            reparsed = parse_query(text)
            direct = endpoint.select(query.to_select())
            via_text = endpoint.select(reparsed)
            assert direct == via_text

    def test_session_workflow_preserves_example(self, stack):
        _name, kg, endpoint, vgraph = stack
        member = _observed_member(kg, vgraph, 2)
        session = ExplorationSession(endpoint, vgraph, similarity_k=2)
        session.synthesize(member.label)
        session.choose(0)
        for kind in ("disaggregate", "similarity", "percentile", "topk"):
            proposals = session.refinements(kind)
            if not proposals:
                continue
            results = session.apply(proposals[0])
            assert session.query.anchor_row_indexes(results), (
                f"{kind} lost the example on {_name}"
            )
            session.back()

    def test_exploration_accounting_monotone(self, stack):
        _name, kg, endpoint, vgraph = stack
        member = _observed_member(kg, vgraph, 0)
        session = ExplorationSession(endpoint, vgraph)
        session.synthesize(member.label)
        session.choose(0)
        for _ in range(2):
            proposals = session.refinements("disaggregate")
            if not proposals:
                break
            session.apply(proposals[0])
        accounting = account_paths(session.history)
        assert list(accounting.cumulative_paths) == sorted(accounting.cumulative_paths)
        assert list(accounting.cumulative_tuples) == sorted(accounting.cumulative_tuples)

    def test_insights_run_over_any_dataset(self, stack):
        _name, kg, endpoint, vgraph = stack
        dimension = kg.schema.dimensions[0]
        member = kg.members_of(dimension.name, dimension.base_level.name)[0]
        (query, *_rest) = reolap(endpoint, vgraph, (member.label,))
        results = endpoint.select(query.to_select())
        insights = insight_summary(query, results)
        assert isinstance(insights, list)

    def test_endpoint_statistics_accumulate(self, stack):
        _name, _kg, endpoint, vgraph = stack
        before = endpoint.stats.total_queries
        reolap(endpoint, vgraph, (_first_label(_kg),))
        assert endpoint.stats.total_queries > before

    def test_reolap_workload_runs_fully_compiled(self, stack):
        """The whole REOLAP workload — synthesize, execute, refine — must
        ride the unified id-space engine: zero term-space fallbacks."""
        _name, kg, _shared_endpoint, vgraph = stack
        endpoint = kg.endpoint()  # fresh counters, same graph
        member = _observed_member(kg, vgraph, 0)
        for query in reolap(endpoint, vgraph, (member.label,)):
            endpoint.select(query.to_select())
        session = ExplorationSession(endpoint, vgraph, similarity_k=2)
        session.synthesize(member.label)
        session.choose(0)
        for kind in ("disaggregate", "similarity", "percentile", "topk"):
            proposals = session.refinements(kind)
            if proposals:
                session.apply(proposals[0])
                session.back()
        stats = endpoint.stats.snapshot()
        assert stats.fallback_selects == 0, stats.decline_reasons
        assert stats.fallback_aggregates == 0, stats.decline_reasons
        assert stats.compiled_selects + stats.fused_aggregates > 0

    def test_reolap_workload_over_reloaded_snapshot(self, stack, tmp_path):
        """Save → load → run the same REOLAP workload over the mmap-backed
        graph: identical results, still zero term-space fallbacks."""
        from repro.qb import OBSERVATION_CLASS
        from repro.store import Endpoint, Graph

        _name, kg, reference_endpoint, vgraph = stack
        path = str(tmp_path / f"{_name}.snap")
        kg.graph.save_snapshot(path)
        endpoint = Endpoint(Graph.load_snapshot(path, readonly=True))
        member = _observed_member(kg, vgraph, 0)
        snap_vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        assert snap_vgraph.n_levels == vgraph.n_levels
        assert snap_vgraph.observation_count == vgraph.observation_count
        for query in reolap(endpoint, snap_vgraph, (member.label,)):
            got = endpoint.select(query.to_select())
            expected = reference_endpoint.select(query.to_select())
            assert got == expected
        session = ExplorationSession(endpoint, snap_vgraph, similarity_k=2)
        session.synthesize(member.label)
        session.choose(0)
        proposals = session.refinements("disaggregate")
        if proposals:
            session.apply(proposals[0])
        stats = endpoint.stats.snapshot()
        assert stats.fallback_selects == 0, stats.decline_reasons
        assert stats.fallback_aggregates == 0, stats.decline_reasons

    def test_mixed_shape_workload_runs_fully_compiled(self, stack):
        """The four formerly-declining shapes — BIND, EXISTS/NOT EXISTS,
        MINUS, and nested subqueries — now compile: a workload exercising
        all of them (alone and combined) must record zero term-space
        fallbacks, and every answer must match the term-space oracle."""
        from repro.qb.cube import CubeBuilder

        _name, kg, _shared_endpoint, _vgraph = stack
        builder = CubeBuilder(kg.schema)
        obs = OBSERVATION_CLASS.n3()
        dim = builder.dimension_predicate(kg.schema.dimensions[0]).n3()
        measure = builder.measure_predicate(kg.schema.measures[0]).n3()
        selects = [
            # bind (retired decline reason "bind")
            f"""SELECT ?obs ?w WHERE {{
                  ?obs a {obs} . ?obs {measure} ?v .
                  BIND(?v * 2 AS ?w) FILTER(?w >= ?v)
                }}""",
            # exists-filter, positive and negated
            f"""SELECT ?obs WHERE {{
                  ?obs a {obs} .
                  FILTER EXISTS {{ ?obs {dim} ?m . }}
                }}""",
            f"""SELECT ?obs ?v WHERE {{
                  ?obs {measure} ?v .
                  FILTER NOT EXISTS {{ ?obs {dim} ?m . FILTER(?v < 0) }}
                }}""",
            # minus
            f"""SELECT ?obs WHERE {{
                  ?obs a {obs} .
                  MINUS {{ ?obs {measure} ?v . FILTER(?v < 0) }}
                }}""",
            # subquery (plain and aggregating)
            f"""SELECT ?obs ?m WHERE {{
                  {{ SELECT ?m WHERE {{ ?o2 {dim} ?m . }} }}
                  ?obs {dim} ?m .
                }}""",
            f"""SELECT ?m ?n WHERE {{
                  {{ SELECT ?m (COUNT(?o2) AS ?n)
                     WHERE {{ ?o2 {dim} ?m . }} GROUP BY ?m }}
                  ?obs {dim} ?m .
                }}""",
            # all four retired shapes in one query
            f"""SELECT ?obs ?w WHERE {{
                  {{ SELECT ?m WHERE {{ ?o2 {dim} ?m . }} }}
                  ?obs {dim} ?m . ?obs {measure} ?v .
                  BIND(?v + 1 AS ?w)
                  FILTER EXISTS {{ ?obs a {obs} . }}
                  MINUS {{ ?obs {measure} ?bad . FILTER(?bad < 0) }}
                }}""",
        ]
        aggregates = [
            # fused aggregate over a body containing every retired shape
            f"""SELECT ?m (SUM(?w) AS ?total) WHERE {{
                  ?obs {dim} ?m . ?obs {measure} ?v .
                  BIND(?v + 1 AS ?w)
                  FILTER EXISTS {{ ?obs a {obs} . }}
                  MINUS {{ ?obs {measure} ?bad . FILTER(?bad < 0) }}
                }} GROUP BY ?m""",
        ]
        endpoint = kg.endpoint()  # fresh counters, same graph
        oracle = kg.endpoint(compile=False)  # term-space differential oracle
        for text in selects + aggregates:
            got = endpoint.select(text)
            expected = oracle.select(text)
            assert len(got) > 0
            assert got == expected
        stats = endpoint.stats.snapshot()
        assert stats.fallback_selects == 0, stats.decline_reasons
        assert stats.fallback_aggregates == 0, stats.decline_reasons
        assert stats.compiled_selects == len(selects)
        assert stats.fused_aggregates == len(aggregates)
        # The retired reasons must never reappear; with this workload the
        # tally stays empty outright (surviving reasons are path-shape,
        # no-id-backend, compile-disabled, and the aggregate-only ones).
        assert stats.decline_reasons == {}
        retired = {"bind", "exists-filter", "minus", "subquery"}
        oracle_stats = oracle.stats.snapshot()
        assert set(oracle_stats.decline_reasons) == {"compile-disabled"}
        assert not retired & set(oracle_stats.decline_reasons)


def _first_label(kg) -> str:
    dimension = kg.schema.dimensions[0]
    return kg.members_of(dimension.name, dimension.base_level.name)[0].label


def _observed_member(kg, vgraph, offset: int):
    """A generated member that the crawler actually saw (cycled by offset)."""
    base = vgraph.base_levels()[0]
    observed = set(base.sample_members)
    for dimension in kg.schema.dimensions:
        candidates = [
            m for m in kg.members_of(dimension.name, dimension.base_level.name)
            if m.iri in observed
        ]
        if candidates:
            return candidates[offset % len(candidates)]
    # sample_members only keeps a few; fall back to the first sample IRI's
    # member record.
    for dimension in kg.schema.dimensions:
        for member in kg.members_of(dimension.name, dimension.base_level.name):
            if member.iri in observed:
                return member
    raise AssertionError("no observed member found")
