"""Data-driven SPARQL conformance corpus.

A compact battery in the spirit of the W3C evaluation tests: each case is
(turtle data, query, expected rows as label tuples).  Cases cover the
feature matrix end to end through the public text interface — parser,
algebra, evaluator together — one behaviour each.
"""

import pytest

from repro.rdf import IRI, Literal
from repro.sparql import evaluate_query
from repro.store import Graph

PREFIX = "@prefix : <http://example.org/> .\n@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"

DATA_BASIC = PREFIX + """
:alice :knows :bob , :carol ; :age 30 ; :name "Alice" .
:bob :knows :carol ; :age 25 ; :name "Bob" .
:carol :age 35 ; :name "Carol"@en .
:dave :age 25 .
"""

DATA_TREE = PREFIX + """
:leaf1 :parent :mid1 . :leaf2 :parent :mid1 . :leaf3 :parent :mid2 .
:mid1 :parent :root . :mid2 :parent :root .
:leaf1 :weight 1 . :leaf2 :weight 2 . :leaf3 :weight 4 .
"""

E = "http://example.org/"


def rows(*items):
    """Expected rows given as tuples of local names / literal text."""
    return [tuple(cell for cell in item) for item in items]


def actual(result):
    out = []
    for row in result.rows:
        cells = []
        for value in row:
            if value is None:
                cells.append(None)
            elif isinstance(value, IRI):
                cells.append(value.local_name())
            else:
                cells.append(value.lexical)
        out.append(tuple(cells))
    return out


CASES = [
    # (name, data, query, expected_rows, ordered?)
    ("object list", DATA_BASIC,
     "SELECT ?x WHERE { <http://example.org/alice> <http://example.org/knows> ?x }",
     rows(("bob",), ("carol",)), False),
    ("join two hops", DATA_BASIC,
     f"SELECT ?z WHERE {{ <{E}alice> <{E}knows> ?y . ?y <{E}knows> ?z }}",
     rows(("carol",)), False),
    ("literal object match", DATA_BASIC,
     f'SELECT ?x WHERE {{ ?x <{E}name> "Bob" }}',
     rows(("bob",)), False),
    ("langtag literal distinct from plain", DATA_BASIC,
     f'SELECT ?x WHERE {{ ?x <{E}name> "Carol" }}',
     rows(), False),
    ("langtag literal match", DATA_BASIC,
     f'SELECT ?x WHERE {{ ?x <{E}name> "Carol"@en }}',
     rows(("carol",)), False),
    ("numeric filter equality across types", DATA_BASIC,
     f"SELECT ?x WHERE {{ ?x <{E}age> ?a . FILTER(?a = 25.0) }}",
     rows(("bob",), ("dave",)), False),
    ("order by desc limit", DATA_BASIC,
     f"SELECT ?x WHERE {{ ?x <{E}age> ?a }} ORDER BY DESC(?a) LIMIT 2",
     rows(("carol",), ("alice",)), True),
    ("order by asc with offset", DATA_BASIC,
     f"SELECT ?a WHERE {{ ?x <{E}age> ?a }} ORDER BY ?a OFFSET 2",
     rows(("30",), ("35",)), True),
    ("optional binds or null", DATA_BASIC,
     f"SELECT ?x ?n WHERE {{ ?x <{E}age> 25 . OPTIONAL {{ ?x <{E}name> ?n }} }}",
     rows(("bob", "Bob"), ("dave", None)), False),
    ("union dedups nothing", DATA_BASIC,
     f"SELECT ?x WHERE {{ {{ ?x <{E}age> 25 }} UNION {{ ?x <{E}name> \"Bob\" }} }}",
     rows(("bob",), ("dave",), ("bob",)), False),
    ("distinct union", DATA_BASIC,
     f"SELECT DISTINCT ?x WHERE {{ {{ ?x <{E}age> 25 }} UNION {{ ?x <{E}name> \"Bob\" }} }}",
     rows(("bob",), ("dave",)), False),
    ("values restricts", DATA_BASIC,
     f"SELECT ?a WHERE {{ VALUES ?x {{ <{E}bob> }} ?x <{E}age> ?a }}",
     rows(("25",)), False),
    ("bind arithmetic", DATA_BASIC,
     f"SELECT ?d WHERE {{ <{E}alice> <{E}age> ?a . BIND(?a * 2 AS ?d) }}",
     rows(("60",)), False),
    ("not exists", DATA_BASIC,
     f"SELECT ?x WHERE {{ ?x <{E}age> ?a . FILTER NOT EXISTS {{ ?x <{E}name> ?n }} }}",
     rows(("dave",)), False),
    ("minus", DATA_BASIC,
     f"SELECT ?x WHERE {{ ?x <{E}age> ?a . MINUS {{ ?x <{E}knows> <{E}carol> }} }}",
     rows(("carol",), ("dave",)), False),
    ("str and contains", DATA_BASIC,
     f'SELECT ?x WHERE {{ ?x <{E}name> ?n . FILTER CONTAINS(STR(?n), "aro") }}',
     rows(("carol",)), False),
    ("count group", DATA_BASIC,
     f"SELECT ?x (COUNT(?y) AS ?n) WHERE {{ ?x <{E}knows> ?y }} GROUP BY ?x",
     rows(("alice", "2"), ("bob", "1")), False),
    ("sum through path", DATA_TREE,
     f"SELECT ?m (SUM(?w) AS ?s) WHERE {{ ?l <{E}parent> ?m . ?l <{E}weight> ?w }} GROUP BY ?m",
     rows(("mid1", "3"), ("mid2", "4")), False),
    ("two-hop sequence path aggregation", DATA_TREE,
     f"SELECT ?r (SUM(?w) AS ?s) WHERE {{ ?l <{E}parent> / <{E}parent> ?r . "
     f"?l <{E}weight> ?w }} GROUP BY ?r",
     rows(("root", "7")), False),
    ("transitive closure plus", DATA_TREE,
     f"SELECT ?x WHERE {{ <{E}leaf1> <{E}parent>+ ?x }}",
     rows(("mid1",), ("root",)), False),
    ("transitive closure star includes self", DATA_TREE,
     f"SELECT ?x WHERE {{ <{E}leaf1> <{E}parent>* ?x }}",
     rows(("leaf1",), ("mid1",), ("root",)), False),
    ("inverse path", DATA_TREE,
     f"SELECT ?x WHERE {{ <{E}mid1> ^<{E}parent> ?x }}",
     rows(("leaf1",), ("leaf2",)), False),
    ("alternative path", DATA_TREE,
     f"SELECT ?x WHERE {{ <{E}leaf1> <{E}parent> | <{E}weight> ?x }}",
     rows(("mid1",), ("1",)), False),
    ("having", DATA_TREE,
     f"SELECT ?m (SUM(?w) AS ?s) WHERE {{ ?l <{E}parent> ?m . ?l <{E}weight> ?w }} "
     f"GROUP BY ?m HAVING (SUM(?w) > 3)",
     rows(("mid2", "4")), False),
    ("min max avg", DATA_TREE,
     f"SELECT (MIN(?w) AS ?mn) (MAX(?w) AS ?mx) (AVG(?w) AS ?av) "
     f"WHERE {{ ?l <{E}weight> ?w }}",
     rows(("1", "4", "2.3333333333333335")), False),
    ("sample is one of the values", DATA_TREE,
     f"SELECT (COUNT(?w) AS ?n) WHERE {{ ?l <{E}weight> ?w . "
     f"FILTER(?w IN (1, 2, 4)) }}",
     rows(("3",)), False),
    ("variable predicate", DATA_BASIC,
     f"SELECT DISTINCT ?p WHERE {{ <{E}dave> ?p ?o }}",
     rows(("age",)), False),
    ("ask true via dispatch", DATA_BASIC,
     f"ASK {{ <{E}alice> <{E}knows> <{E}bob> }}", True, False),
    ("ask false via dispatch", DATA_BASIC,
     f"ASK {{ <{E}bob> <{E}knows> <{E}alice> }}", False, False),
    ("exists filter", DATA_BASIC,
     f"SELECT ?x WHERE {{ ?x <{E}age> ?a . FILTER EXISTS {{ ?x <{E}knows> ?y }} }}",
     rows(("alice",), ("bob",)), False),
    ("if and coalesce", DATA_BASIC,
     f"SELECT ?x (IF(?a >= 30, \"senior\", \"junior\") AS ?cls) "
     f"WHERE {{ ?x <{E}age> ?a }} ORDER BY ?x",
     rows(("alice", "senior"), ("bob", "junior"), ("carol", "senior"), ("dave", "junior")), True),
    ("order by unprojected variable", DATA_BASIC,
     f"SELECT ?x WHERE {{ ?x <{E}age> ?a }} ORDER BY DESC(?a) LIMIT 1",
     rows(("carol",)), True),
    ("subquery aggregate join", DATA_TREE,
     f"SELECT ?m ?s WHERE {{ {{ SELECT ?m (SUM(?w) AS ?s) WHERE {{ "
     f"?l <{E}parent> ?m . ?l <{E}weight> ?w }} GROUP BY ?m }} "
     f"?m <{E}parent> <{E}root> }} ORDER BY ?m",
     rows(("mid1", "3"), ("mid2", "4")), True),
    ("filter on langtag", DATA_BASIC,
     f'SELECT ?x WHERE {{ ?x <{E}name> ?n . FILTER(LANG(?n) = "en") }}',
     rows(("carol",)), False),
    ("datatype check", DATA_BASIC,
     f"SELECT ?x WHERE {{ ?x <{E}age> ?a . "
     f"FILTER(DATATYPE(?a) = <http://www.w3.org/2001/XMLSchema#integer>) }}",
     rows(("alice",), ("bob",), ("carol",), ("dave",)), False),
    ("nested boolean precedence", DATA_BASIC,
     f"SELECT ?x WHERE {{ ?x <{E}age> ?a . FILTER(?a = 25 || ?a = 30 && ?a > 28) }}",
     rows(("alice",), ("bob",), ("dave",)), False),
    ("regex case-insensitive", DATA_BASIC,
     f'SELECT ?x WHERE {{ ?x <{E}name> ?n . FILTER REGEX(?n, "^aL", "i") }}',
     rows(("alice",)), False),
    ("group_concat", DATA_TREE,
     f"SELECT ?m (GROUP_CONCAT(?w) AS ?ws) WHERE {{ ?l <{E}parent> ?m . "
     f"?l <{E}weight> ?w }} GROUP BY ?m HAVING (COUNT(*) > 1)",
     rows(("mid1", "1 2")), False),
]

CONSTRUCT_CASES = [
    ("construct grandparent", DATA_TREE,
     f"CONSTRUCT {{ ?l <{E}grandparent> ?g }} WHERE {{ "
     f"?l <{E}parent> ?m . ?m <{E}parent> ?g }}",
     {("leaf1", "grandparent", "root"), ("leaf2", "grandparent", "root"),
      ("leaf3", "grandparent", "root")}),
    ("construct with constant", DATA_BASIC,
     f"CONSTRUCT {{ ?x <{E}type> <{E}Person> }} WHERE {{ ?x <{E}age> ?a . "
     f"FILTER(?a > 30) }}",
     {("carol", "type", "Person")}),
]


@pytest.mark.parametrize(
    "name,data,query,expected",
    CONSTRUCT_CASES,
    ids=[case[0] for case in CONSTRUCT_CASES],
)
def test_construct_corpus(name, data, query, expected):
    graph = Graph.from_turtle(data)
    result = evaluate_query(graph, query)
    got = {
        (t.s.local_name(), t.p.local_name(),
         t.o.local_name() if isinstance(t.o, IRI) else t.o.lexical)
        for t in result.triples()
    }
    assert got == expected


@pytest.mark.parametrize(
    "name,data,query,expected,ordered",
    CASES,
    ids=[case[0] for case in CASES],
)
def test_sparql_corpus(name, data, query, expected, ordered):
    graph = Graph.from_turtle(data)
    result = evaluate_query(graph, query)
    if isinstance(expected, bool):
        assert result is expected
        return
    got = actual(result)
    if ordered:
        assert got == expected
    else:
        assert sorted(map(repr, got)) == sorted(map(repr, expected))
