"""Tests for nested SELECT subqueries."""

import pytest

from repro.rdf import IRI, Triple, literal_from_python
from repro.sparql import evaluate_query, parse_query
from repro.sparql.ast import SubSelect
from repro.store import Graph

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


@pytest.fixture
def sales_graph():
    g = Graph()
    data = [
        ("s1", "berlin", 10), ("s2", "berlin", 30), ("s3", "paris", 5),
        ("s4", "paris", 15), ("s5", "rome", 100),
    ]
    for sale, city, amount in data:
        g.add(Triple(iri(sale), iri("city"), iri(city)))
        g.add(Triple(iri(sale), iri("amount"), literal_from_python(amount)))
        g.add(Triple(iri(city), iri("country"), iri(city + "_country")))
    return g


class TestSubqueries:
    def test_parse_produces_subselect(self):
        q = parse_query(
            f"SELECT ?x WHERE {{ {{ SELECT ?x WHERE {{ ?x <{EX}p> ?y }} }} }}"
        )
        assert any(isinstance(e, SubSelect) for e in q.where.elements)

    def test_aggregate_subquery_joined_with_outer(self, sales_graph):
        """The canonical use: aggregate inside, enrich outside."""
        rs = evaluate_query(
            sales_graph,
            f"SELECT ?city ?country ?total WHERE {{ "
            f"{{ SELECT ?city (SUM(?a) AS ?total) WHERE {{ "
            f"?s <{EX}city> ?city . ?s <{EX}amount> ?a }} GROUP BY ?city }} "
            f"?city <{EX}country> ?country }}",
        )
        got = {
            row[0].local_name(): (row[1].local_name(), row[2].to_python())
            for row in rs
        }
        assert got == {
            "berlin": ("berlin_country", 40),
            "paris": ("paris_country", 20),
            "rome": ("rome_country", 100),
        }

    def test_limit_inside_subquery(self, sales_graph):
        """Top-1 city by total via inner ORDER BY + LIMIT."""
        rs = evaluate_query(
            sales_graph,
            f"SELECT ?city ?country WHERE {{ "
            f"{{ SELECT ?city (SUM(?a) AS ?t) WHERE {{ ?s <{EX}city> ?city . "
            f"?s <{EX}amount> ?a }} GROUP BY ?city ORDER BY DESC(?t) LIMIT 1 }} "
            f"?city <{EX}country> ?country }}",
        )
        assert len(rs) == 1
        assert rs.rows[0][0] == iri("rome")

    def test_subquery_filtered_by_outer_filter(self, sales_graph):
        rs = evaluate_query(
            sales_graph,
            f"SELECT ?city WHERE {{ "
            f"{{ SELECT ?city (SUM(?a) AS ?t) WHERE {{ ?s <{EX}city> ?city . "
            f"?s <{EX}amount> ?a }} GROUP BY ?city }} "
            f"FILTER(?t >= 40) }}",
        )
        assert {row[0] for row in rs} == {iri("berlin"), iri("rome")}

    def test_roundtrip(self):
        q = parse_query(
            f"SELECT ?x ?t WHERE {{ {{ SELECT ?x (SUM(?v) AS ?t) WHERE {{ "
            f"?x <{EX}p> ?v . }} GROUP BY ?x }} ?x <{EX}q> ?z . }}"
        )
        assert parse_query(q.to_sparql()).to_sparql() == q.to_sparql()

    def test_union_of_groups_still_works(self, sales_graph):
        # '{' followed by a pattern (not SELECT) must stay a union branch.
        rs = evaluate_query(
            sales_graph,
            f"SELECT ?s WHERE {{ {{ ?s <{EX}city> <{EX}rome> }} UNION "
            f"{{ ?s <{EX}city> <{EX}paris> }} }}",
        )
        assert len(rs) == 3
