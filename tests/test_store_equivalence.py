"""Property suite: the storage layouts are observationally identical.

The columnar engine (sorted runs + delta buffer + tombstones), the
legacy dict layout, and a snapshot round-trip of the columnar graph must
be indistinguishable through the index façade: every triple-pattern
shape, ``count``, the scan API, and the ``PredicateStats`` catalog agree
after any interleaving of adds and removes — including sequences that
force delta flushes mid-stream (tiny ``flush_threshold``) and removes
that land in the delta, in the runs (tombstones), or nowhere.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Literal
from repro.rdf.triple import Triple
from repro.store import DictTripleIndex, Graph, TripleIndex

small_ids = st.integers(min_value=0, max_value=6)
id_triples = st.tuples(small_ids, small_ids, small_ids)
operations = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), id_triples), max_size=80
)
flush_thresholds = st.integers(min_value=1, max_value=8)

PATTERN_SHAPES = (
    (None, None, None),
    (0, None, None),
    (None, 0, None),
    (None, None, 0),
    (0, 0, None),
    (0, None, 0),
    (None, 0, 0),
    (0, 0, 0),
)


def build_pair(ops, flush_threshold):
    """Apply ops to a dict index and a columnar index in lockstep."""
    dict_index = DictTripleIndex()
    columnar = TripleIndex(flush_threshold=flush_threshold)
    for op, triple in ops:
        if op == "add":
            assert dict_index.add(*triple) == columnar.add(*triple)
        else:
            assert dict_index.remove(*triple) == columnar.remove(*triple)
    return dict_index, columnar


def snapshot_copy(columnar: TripleIndex, tmp_path_factory) -> TripleIndex:
    """Round-trip a columnar index through the snapshot format."""
    graph = Graph()
    terms = graph.term_dictionary
    ids = [terms.encode(Literal(str(i))) for i in range(7)]
    for s, p, o in columnar.match(None, None, None):
        graph.triple_index.add(ids[s], ids[p], ids[o])
    path = str(tmp_path_factory.mktemp("equiv") / "g.snap")
    graph.save_snapshot(path)
    loaded = Graph.load_snapshot(path)
    # Translate loaded term ids back to the 0..6 id space.
    remap = {}
    loaded_terms = loaded.term_dictionary
    for i in range(7):
        tid = loaded_terms.lookup(Literal(str(i)))
        if tid is not None:
            remap[tid] = i
    return loaded.triple_index, remap


def assert_equivalent(reference, candidate, tag):
    for probe in range(7):
        shapes = [
            tuple(probe if b == 0 else None for b in shape)
            for shape in PATTERN_SHAPES
        ]
        for shape in shapes:
            expected = set(reference.match(*shape))
            assert set(candidate.match(*shape)) == expected, (tag, shape)
            assert candidate.count(*shape) == len(expected), (tag, shape)
    assert len(candidate) == len(reference), tag
    assert set(candidate.predicates()) == set(reference.predicates()), tag
    for pid in reference.predicates():
        assert candidate.predicate_stats(pid) == reference.predicate_stats(pid), (
            tag,
            pid,
        )


class TestLayoutEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(operations, flush_thresholds)
    def test_all_patterns_counts_and_stats_agree(self, ops, flush_threshold):
        dict_index, columnar = build_pair(ops, flush_threshold)
        assert_equivalent(dict_index, columnar, "columnar")

    @settings(max_examples=60, deadline=None)
    @given(operations, flush_thresholds)
    def test_scan_api_agrees(self, ops, flush_threshold):
        dict_index, columnar = build_pair(ops, flush_threshold)
        for x in range(7):
            for y in range(7):
                assert sorted(columnar.scan_objects(x, y)) == sorted(
                    dict_index.scan_objects(x, y)
                )
                assert sorted(columnar.scan_subjects(x, y)) == sorted(
                    dict_index.scan_subjects(x, y)
                )
                assert sorted(columnar.scan_predicates(x, y)) == sorted(
                    dict_index.scan_predicates(x, y)
                )
                assert columnar.contains(x, y, y) == dict_index.contains(x, y, y)
            assert sorted(columnar.predicate_pairs(x)) == sorted(
                dict_index.predicate_pairs(x)
            )
            assert sorted(columnar.subjects_for_predicate(x)) == sorted(
                dict_index.subjects_for_predicate(x)
            )
            assert sorted(columnar.objects_for_predicate(x)) == sorted(
                dict_index.objects_for_predicate(x)
            )

    @settings(max_examples=40, deadline=None)
    @given(operations, flush_thresholds)
    def test_explicit_flush_changes_nothing(self, ops, flush_threshold):
        dict_index, columnar = build_pair(ops, flush_threshold)
        columnar.flush()
        assert columnar.delta_size == 0
        assert columnar.tombstones == 0
        assert_equivalent(dict_index, columnar, "flushed")


class TestSnapshotEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(operations, flush_thresholds)
    def test_reloaded_snapshot_agrees_with_dict(
        self, tmp_path_factory, ops, flush_threshold
    ):
        dict_index, columnar = build_pair(ops, flush_threshold)
        loaded, remap = snapshot_copy(columnar, tmp_path_factory)
        # Compare through the remap: every match in the loaded index maps
        # back onto the reference set, shape by shape.
        inverse = {v: k for k, v in remap.items()}
        for probe in range(7):
            if probe not in inverse:
                # Terms absent from the final triple set aren't in the
                # snapshot; the reference must agree they match nothing.
                for shape in PATTERN_SHAPES[1:]:
                    bound = tuple(probe if b == 0 else None for b in shape)
                    assert dict_index.count(*bound) == 0
                continue
            for shape in PATTERN_SHAPES:
                bound_ref = tuple(probe if b == 0 else None for b in shape)
                bound_new = tuple(
                    inverse[probe] if b == 0 else None for b in shape
                )
                expected = set(dict_index.match(*bound_ref))
                got = {
                    (remap[s], remap[p], remap[o])
                    for (s, p, o) in loaded.match(*bound_new)
                }
                assert got == expected, shape
                assert loaded.count(*bound_new) == len(expected), shape
        for pid in dict_index.predicates():
            if pid in inverse:
                assert loaded.predicate_stats(inverse[pid]) == dict_index.predicate_stats(pid)
