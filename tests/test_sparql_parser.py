"""Unit tests for the SPARQL parser and AST serialization round-trips."""

import pytest

from repro.errors import SPARQLSyntaxError
from repro.rdf import IRI, Literal, Variable, XSD_INTEGER
from repro.sparql import (
    Aggregate,
    AlternativePath,
    AskQuery,
    Comparison,
    Filter,
    InversePath,
    OptionalPattern,
    SelectQuery,
    SequencePath,
    TriplePattern,
    UnionPattern,
    ValuesClause,
    parse_query,
)

EX = "http://example.org/"


class TestBasicParsing:
    def test_simple_select(self):
        q = parse_query(f"SELECT ?s WHERE {{ ?s <{EX}p> ?o . }}")
        assert isinstance(q, SelectQuery)
        assert q.output_variables() == [Variable("s")]
        (pattern,) = q.where.triple_patterns()
        assert pattern.p == IRI(EX + "p")

    def test_select_star(self):
        q = parse_query(f"SELECT * WHERE {{ ?s <{EX}p> ?o }}")
        assert q.select_all
        assert set(q.output_variables()) == {Variable("s"), Variable("o")}

    def test_prefix_resolution(self):
        q = parse_query(
            f"PREFIX ex: <{EX}> SELECT ?s WHERE {{ ?s ex:p ex:o . }}"
        )
        (pattern,) = q.where.triple_patterns()
        assert pattern.p == IRI(EX + "p")
        assert pattern.o == IRI(EX + "o")

    def test_undeclared_prefix(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?s WHERE { ?s ex:p ?o . }")

    def test_a_keyword(self):
        q = parse_query(f"SELECT ?s WHERE {{ ?s a <{EX}T> }}")
        (pattern,) = q.where.triple_patterns()
        assert pattern.p.value.endswith("type")

    def test_semicolon_and_comma(self):
        q = parse_query(
            f"SELECT ?s WHERE {{ ?s <{EX}p> ?a , ?b ; <{EX}q> ?c . }}"
        )
        assert len(q.where.triple_patterns()) == 3

    def test_distinct(self):
        q = parse_query(f"SELECT DISTINCT ?s WHERE {{ ?s <{EX}p> ?o }}")
        assert q.distinct

    def test_literals_in_pattern(self):
        q = parse_query(f'SELECT ?s WHERE {{ ?s <{EX}p> "Germany" . ?s <{EX}q> 42 . }}')
        objs = [p.o for p in q.where.triple_patterns()]
        assert objs == [Literal("Germany"), Literal("42", datatype=XSD_INTEGER)]

    def test_langtag_and_datatype_literals(self):
        q = parse_query(
            f'SELECT ?s WHERE {{ ?s <{EX}p> "x"@en . '
            f'?s <{EX}q> "7"^^<http://www.w3.org/2001/XMLSchema#integer> . }}'
        )
        objs = [p.o for p in q.where.triple_patterns()]
        assert objs[0].language == "en"
        assert objs[1].datatype == XSD_INTEGER

    def test_ask(self):
        q = parse_query(f"ASK {{ ?s <{EX}p> ?o }}")
        assert isinstance(q, AskQuery)

    def test_trailing_garbage(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query(f"SELECT ?s WHERE {{ ?s <{EX}p> ?o }} extra:stuff")

    def test_missing_where_body(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?s")


class TestPropertyPaths:
    def test_sequence_path(self):
        q = parse_query(f"SELECT ?s WHERE {{ ?s <{EX}p1> / <{EX}p2> ?o }}")
        (pattern,) = q.where.triple_patterns()
        assert isinstance(pattern.p, SequencePath)
        assert [s.value for s in pattern.p.steps] == [EX + "p1", EX + "p2"]

    def test_inverse_path(self):
        q = parse_query(f"SELECT ?s WHERE {{ ?s ^<{EX}p> ?o }}")
        (pattern,) = q.where.triple_patterns()
        assert isinstance(pattern.p, InversePath)

    def test_alternative_path(self):
        q = parse_query(f"SELECT ?s WHERE {{ ?s <{EX}p> | <{EX}q> ?o }}")
        (pattern,) = q.where.triple_patterns()
        assert isinstance(pattern.p, AlternativePath)

    def test_nested_path(self):
        q = parse_query(f"SELECT ?s WHERE {{ ?s (<{EX}a> | <{EX}b>) / <{EX}c> ?o }}")
        (pattern,) = q.where.triple_patterns()
        assert isinstance(pattern.p, SequencePath)
        assert isinstance(pattern.p.steps[0], AlternativePath)


class TestFiltersAndModifiers:
    def test_filter_comparison(self):
        q = parse_query(f"SELECT ?s WHERE {{ ?s <{EX}p> ?v . FILTER(?v > 10) }}")
        (flt,) = q.where.filters()
        assert isinstance(flt.expression, Comparison)

    def test_filter_boolean_connectives(self):
        q = parse_query(
            f"SELECT ?s WHERE {{ ?s <{EX}p> ?v . FILTER(?v > 10 && ?v < 20 || ?v = 0) }}"
        )
        assert q.where.filters()

    def test_filter_in(self):
        q = parse_query(
            f'SELECT ?s WHERE {{ ?s <{EX}p> ?v . FILTER(?v IN ("a", "b")) }}'
        )
        assert q.where.filters()

    def test_filter_not_in(self):
        q = parse_query(
            f'SELECT ?s WHERE {{ ?s <{EX}p> ?v . FILTER(?v NOT IN ("a")) }}'
        )
        (flt,) = q.where.filters()
        assert flt.expression.negated

    def test_filter_builtin_without_parens(self):
        q = parse_query(f"SELECT ?s WHERE {{ ?s <{EX}p> ?v . FILTER isLiteral(?v) }}")
        assert q.where.filters()

    def test_group_by_and_aggregates(self):
        q = parse_query(
            f"SELECT ?d (SUM(?v) AS ?total) WHERE {{ ?o <{EX}dim> ?d . "
            f"?o <{EX}val> ?v }} GROUP BY ?d"
        )
        assert q.group_by == (Variable("d"),)
        assert q.is_aggregate_query
        assert isinstance(q.projections[1].expression, Aggregate)

    def test_count_star_and_distinct(self):
        q = parse_query(
            f"SELECT (COUNT(*) AS ?n) (COUNT(DISTINCT ?v) AS ?m) "
            f"WHERE {{ ?s <{EX}p> ?v }}"
        )
        first, second = (p.expression for p in q.projections)
        assert first.arg is None
        assert second.distinct

    def test_having(self):
        q = parse_query(
            f"SELECT ?d (SUM(?v) AS ?t) WHERE {{ ?o <{EX}d> ?d . ?o <{EX}v> ?v }} "
            f"GROUP BY ?d HAVING (SUM(?v) > 100)"
        )
        assert len(q.having) == 1

    def test_order_limit_offset(self):
        q = parse_query(
            f"SELECT ?s WHERE {{ ?s <{EX}p> ?v }} ORDER BY DESC(?v) ?s LIMIT 5 OFFSET 2"
        )
        assert not q.order_by[0].ascending
        assert q.order_by[1].ascending
        assert q.limit == 5
        assert q.offset == 2

    def test_keywords_case_insensitive(self):
        q = parse_query(f"select ?s where {{ ?s <{EX}p> ?v }} order by ?v limit 1")
        assert q.limit == 1


class TestGroupPatterns:
    def test_optional(self):
        q = parse_query(
            f"SELECT ?s ?l WHERE {{ ?s <{EX}p> ?o . OPTIONAL {{ ?s <{EX}label> ?l }} }}"
        )
        optionals = [e for e in q.where.elements if isinstance(e, OptionalPattern)]
        assert len(optionals) == 1

    def test_union(self):
        q = parse_query(
            f"SELECT ?s WHERE {{ {{ ?s <{EX}p> ?o }} UNION {{ ?s <{EX}q> ?o }} }}"
        )
        unions = [e for e in q.where.elements if isinstance(e, UnionPattern)]
        assert len(unions) == 1
        assert len(unions[0].branches) == 2

    def test_values_multi_var(self):
        q = parse_query(
            f'SELECT ?a ?b WHERE {{ VALUES (?a ?b) {{ (<{EX}x> "1") (<{EX}y> UNDEF) }} '
            f"?a <{EX}p> ?c }}"
        )
        (clause,) = [e for e in q.where.elements if isinstance(e, ValuesClause)]
        assert len(clause.rows) == 2
        assert clause.rows[1][1] is None

    def test_values_single_var_shorthand(self):
        q = parse_query(
            f"SELECT ?a WHERE {{ VALUES ?a {{ <{EX}x> <{EX}y> }} ?a <{EX}p> ?c }}"
        )
        (clause,) = [e for e in q.where.elements if isinstance(e, ValuesClause)]
        assert len(clause.rows) == 2


class TestRoundTrip:
    QUERIES = [
        f"SELECT ?s WHERE {{ ?s <{EX}p> ?o . }}",
        f"SELECT DISTINCT ?s (SUM(?v) AS ?t) WHERE {{ ?s <{EX}p> ?v . }} GROUP BY ?s",
        f"SELECT ?s WHERE {{ ?s <{EX}a> / <{EX}b> ?o . FILTER(?o > 3) }} ORDER BY DESC(?o) LIMIT 2",
        f"SELECT ?s WHERE {{ ?s ^<{EX}p> ?o . }}",
        f'SELECT ?s WHERE {{ VALUES (?s) {{ (<{EX}x>) }} ?s <{EX}p> ?o . }}',
        f"SELECT ?s ?l WHERE {{ ?s <{EX}p> ?o . OPTIONAL {{ ?s <{EX}l> ?l . }} }}",
        f"SELECT ?d (AVG(?v) AS ?a) WHERE {{ ?o <{EX}d> ?d . ?o <{EX}v> ?v . }} "
        f"GROUP BY ?d HAVING ((AVG(?v) >= 10)) ORDER BY ?a OFFSET 1",
    ]

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_parse_serialize_parse_fixpoint(self, query_text):
        first = parse_query(query_text)
        rendered = first.to_sparql()
        second = parse_query(rendered)
        assert second.to_sparql() == rendered
