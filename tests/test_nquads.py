"""Tests for N-Quads serialization and Dataset persistence."""

import pytest

from repro.errors import RDFSyntaxError
from repro.rdf import IRI, Literal, Quad, Triple, parse_nquads, serialize_nquads
from repro.store import Dataset

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


class TestNQuads:
    def test_parse_triple_and_quad(self):
        doc = (
            f"<{EX}s> <{EX}p> <{EX}o> .\n"
            f"<{EX}s> <{EX}p> \"x\" <{EX}g1> .\n"
        )
        items = list(parse_nquads(doc))
        assert isinstance(items[0], Triple) and not isinstance(items[0], Quad)
        assert isinstance(items[1], Quad)
        assert items[1].graph == iri("g1")

    def test_literal_graph_label_rejected(self):
        with pytest.raises(RDFSyntaxError):
            list(parse_nquads(f'<{EX}s> <{EX}p> <{EX}o> "not a graph" .\n'))

    def test_missing_dot(self):
        with pytest.raises(RDFSyntaxError):
            list(parse_nquads(f"<{EX}s> <{EX}p> <{EX}o> <{EX}g>\n"))

    def test_roundtrip(self):
        items = [
            Triple(iri("s"), iri("p"), Literal("plain")),
            Quad(iri("s"), iri("p"), iri("o"), iri("g1")),
            Quad(iri("s2"), iri("p"), Literal("7", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer")), iri("g2")),
        ]
        assert list(parse_nquads(serialize_nquads(items))) == items


class TestDatasetPersistence:
    def test_dataset_roundtrip(self):
        dataset = Dataset()
        dataset.add(Triple(iri("s"), iri("p"), iri("o")))
        dataset.add(Quad(iri("s"), iri("p"), Literal("x"), iri("g1")))
        dataset.add(Quad(iri("s2"), iri("q"), iri("o2"), iri("g2")))
        document = dataset.to_nquads()
        restored = Dataset.from_nquads(document)
        assert len(restored) == len(dataset)
        assert restored.graph_names() == dataset.graph_names()
        assert Triple(iri("s"), iri("p"), Literal("x")) in restored.graph(iri("g1"))

    def test_union_view_after_reload(self):
        dataset = Dataset()
        dataset.add(Quad(iri("s"), iri("p"), iri("o"), iri("g1")))
        restored = Dataset.from_nquads(dataset.to_nquads())
        view = restored.union_view()
        assert view.count(iri("s"), None, None) == 1
