"""Shared fixtures: small statistical KGs with bootstrapped virtual graphs.

Building and crawling a KG dominates test time, so the fixtures are
session-scoped; tests must treat them as read-only.
"""

import pytest

from repro.core import VirtualSchemaGraph
from repro.datasets import generate_eurostat
from repro.qb import (
    CubeBuilder,
    CubeSchema,
    DimensionSpec,
    HierarchySpec,
    LevelSpec,
    MeasureSpec,
    OBSERVATION_CLASS,
)


def mini_schema() -> CubeSchema:
    """A 3-dimension cube mirroring the paper's Figure 1 fragment."""
    country = LevelSpec(
        "country", 4, pool="country",
        label_values=("Germany", "France", "Syria", "China"),
    )
    continent = LevelSpec("continent", 2, pool="continent", label_values=("Europe", "Asia"))
    year = LevelSpec("year", 3, label_values=("2013", "2014", "2015"))
    return CubeSchema(
        name="mini",
        namespace="http://example.org/mini/",
        dimensions=(
            DimensionSpec(
                "origin",
                (HierarchySpec("origin_geo", (country, continent), rollup_names=("in_continent",)),),
                predicate_name="country_of_origin",
            ),
            DimensionSpec(
                "destination",
                (HierarchySpec("dest_geo", (country, continent), rollup_names=("in_continent",)),),
                predicate_name="country_of_destination",
            ),
            DimensionSpec("period", (HierarchySpec("period", (year,)),), predicate_name="ref_period"),
        ),
        measures=(MeasureSpec("num_applicants", low=0, high=100),),
    )


@pytest.fixture(scope="session")
def mini_kg():
    return CubeBuilder(mini_schema(), seed=42).build(120)


@pytest.fixture(scope="session")
def mini_endpoint(mini_kg):
    return mini_kg.endpoint()


@pytest.fixture(scope="session")
def mini_vgraph(mini_endpoint):
    return VirtualSchemaGraph.bootstrap(mini_endpoint, OBSERVATION_CLASS)


@pytest.fixture(scope="session")
def eurostat_kg():
    return generate_eurostat(n_observations=600, scale=0.15, seed=7)


@pytest.fixture(scope="session")
def eurostat_endpoint(eurostat_kg):
    return eurostat_kg.endpoint()


@pytest.fixture(scope="session")
def eurostat_vgraph(eurostat_endpoint):
    return VirtualSchemaGraph.bootstrap(eurostat_endpoint, OBSERVATION_CLASS)
