"""Tests for the interactive exploration session (Algorithm 2)."""

import pytest

from repro.core import ExplorationSession, account_paths, profile
from repro.errors import RefinementError, SynthesisError


@pytest.fixture()
def session(mini_endpoint, mini_vgraph):
    return ExplorationSession(mini_endpoint, mini_vgraph)


class TestSessionFlow:
    def test_synthesize_choose_refine(self, session):
        candidates = session.synthesize("Germany", "2014")
        assert len(candidates) == 2
        results = session.choose(0)
        assert len(results) > 0
        assert session.current.kind == "synthesis"
        menu = session.all_refinements()
        assert set(menu) == {
            "disaggregate", "rollup", "slice", "topk", "percentile", "similarity",
        }
        refined_results = session.apply(menu["disaggregate"][0])
        assert session.current.kind == "disaggregate"
        assert len(session.history) == 2
        assert len(refined_results) >= len(results)

    def test_choose_before_synthesize(self, session):
        with pytest.raises(SynthesisError):
            session.choose(0)

    def test_choose_out_of_range(self, session):
        session.synthesize("2014")
        with pytest.raises(IndexError):
            session.choose(99)

    def test_current_before_choose(self, session):
        session.synthesize("2014")
        with pytest.raises(RefinementError):
            _ = session.current

    def test_unknown_refinement_kind(self, session):
        session.synthesize("2014")
        session.choose(0)
        with pytest.raises(RefinementError):
            session.refinements("clustering")

    def test_backtracking(self, session):
        session.synthesize("Germany", "2014")
        session.choose(0)
        first_query = session.query
        session.apply(session.refinements("disaggregate")[0])
        assert session.query is not first_query
        session.back()
        assert session.query is first_query
        with pytest.raises(RefinementError):
            session.back()

    def test_resynthesis_resets_history(self, session):
        session.synthesize("2014")
        session.choose(0)
        session.synthesize("Germany")
        assert session.history == []

    def test_arbitrary_refinement_chains(self, session):
        """Operations compose in any order (Section 4.2)."""
        session.synthesize("Germany", "2014")
        session.choose(0)
        session.apply(session.refinements("disaggregate")[0])
        session.apply(session.refinements("similarity")[0])
        proposals = session.refinements("topk")
        if proposals:  # small restricted sets may leave no separable top-k
            session.apply(proposals[0])
        assert len(session.history) >= 3

    def test_refinement_kinds_sorted(self, session):
        assert session.refinement_kinds() == sorted(session.refinement_kinds())


class TestPathAccounting:
    def test_multiplicative_paths(self, session):
        session.synthesize("Germany", "2014")
        session.choose(0)
        session.apply(session.refinements("disaggregate")[0])
        accounting = account_paths(session.history)
        assert accounting.cumulative_paths[0] == 2  # two candidates
        step2_options = accounting.options[1]
        assert accounting.cumulative_paths[1] == 2 * step2_options
        assert accounting.cumulative_tuples[1] > accounting.cumulative_tuples[0]

    def test_rows_structure(self, session):
        session.synthesize("2014")
        session.choose(0)
        rows = account_paths(session.history).rows()
        assert rows[0]["interaction"] == 1
        assert rows[0]["kind"] == "synthesis"

    def test_empty_history(self):
        accounting = account_paths([])
        assert accounting.cumulative_paths == ()


class TestProfile:
    def test_profile_contents(self, mini_vgraph):
        prof = profile(mini_vgraph)
        assert prof.observation_count == 120
        assert prof.n_dimensions == 3
        assert prof.n_levels == 5
        assert prof.measures == ("Num Applicants",)

    def test_pretty_renders(self, mini_vgraph):
        text = profile(mini_vgraph).pretty()
        assert "observations: 120" in text
        assert "Country Of Origin" in text
