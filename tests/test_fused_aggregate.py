"""Tests for the fused id-space aggregation pipeline.

Covers the equivalence property (fused plans return exactly what the
term-space ``_aggregate`` path returns, including DISTINCT aggregates,
HAVING, unbound group keys, empty groups, and OFFSET/LIMIT), the
qualifying rules (non-qualifying shapes decline to the fallback instead of
mis-answering), plan caching by graph epoch, the endpoint's fused/fallback
counters, the cooperative deadline inside the accumulation loop, the
single-pass MIN/MAX replacement in the term-space path, and the bounded
top-k ordering both engines now share.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryTimeoutError
from repro.rdf import IRI, Literal, Triple, literal_from_python
from repro.rdf.terms import XSD_DOUBLE, XSD_INTEGER
from repro.serving import QueryCache
from repro.sparql import Evaluator, compile_aggregate, parse_query
from repro.sparql.aggregator import AggregatePlan, compile_aggregate_ex
from repro.store import Endpoint, Graph

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


def build_cube(rows):
    """A tiny cube from encoded rows: (obs, dim member, value, has value).

    Observations may repeat with different dims/values (fan-out through the
    join) and may lack the measure entirely (unbound aggregate argument).
    """
    graph = Graph()
    for obs, dim, value, has_value in rows:
        subject = iri(f"obs{obs}")
        graph.add(Triple(subject, iri("dim"), iri(f"d{dim}")))
        if has_value:
            graph.add(Triple(subject, iri("val"), literal_from_python(value)))
    return graph


cube_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=-5, max_value=9),
        st.booleans(),
    ),
    min_size=0,
    max_size=30,
)

BODY = f"?o <{EX}dim> ?d . ?o <{EX}val> ?v ."

AGG_QUERIES = [
    # Core streaming accumulators over one group key.
    f"SELECT ?d (SUM(?v) AS ?s) (COUNT(*) AS ?c) WHERE {{ {BODY} }} GROUP BY ?d",
    f"SELECT ?d (AVG(?v) AS ?a) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) "
    f"WHERE {{ {BODY} }} GROUP BY ?d",
    f"SELECT ?d (SAMPLE(?v) AS ?any) (GROUP_CONCAT(?v) AS ?g) "
    f"WHERE {{ {BODY} }} GROUP BY ?d",
    # DISTINCT variants (id-set dedup must equal term dedup).
    f"SELECT ?d (COUNT(DISTINCT ?v) AS ?c) (SUM(DISTINCT ?v) AS ?s) "
    f"WHERE {{ {BODY} }} GROUP BY ?d",
    f"SELECT ?d (AVG(DISTINCT ?v) AS ?a) (GROUP_CONCAT(DISTINCT ?v) AS ?g) "
    f"WHERE {{ {BODY} }} GROUP BY ?d",
    # Aggregating the grouped dim itself; COUNT of a sometimes-unbound var.
    f"SELECT ?d (COUNT(?v) AS ?c) WHERE {{ ?o <{EX}dim> ?d . "
    f"OPTIONAL {{ ?o <{EX}missing> ?v . }} }} GROUP BY ?d",
    # HAVING — aggregate-only and mixed arithmetic (general program path).
    f"SELECT ?d (COUNT(*) AS ?c) WHERE {{ {BODY} }} GROUP BY ?d "
    f"HAVING (COUNT(*) > 1)",
    f"SELECT ?d (SUM(?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d "
    f"HAVING ((SUM(?v) + COUNT(*)) > 3)",
    # Unbound group key: ?nowhere is bound by no pattern.
    f"SELECT ?nowhere (COUNT(*) AS ?c) WHERE {{ {BODY} }} GROUP BY ?nowhere",
    # No GROUP BY: exactly one group, even over zero solutions.
    f"SELECT (COUNT(*) AS ?c) (SUM(?v) AS ?s) WHERE {{ {BODY} }}",
    f"SELECT (MIN(?v) AS ?lo) WHERE {{ {BODY} }}",
    # Anchored on a member that may not exist (empty-plan short-circuit).
    f"SELECT (COUNT(*) AS ?c) WHERE {{ ?o <{EX}dim> <{EX}d9> . "
    f"?o <{EX}val> ?v . }}",
    # FILTER pushdown into the id-space join.
    f"SELECT ?d (SUM(?v) AS ?s) WHERE {{ {BODY} FILTER(?v >= 10) }} GROUP BY ?d",
    # ORDER BY / LIMIT / OFFSET over aggregate outputs (bounded top-k).
    f"SELECT ?d (SUM(?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d "
    f"ORDER BY DESC(?s) ?d LIMIT 2",
    f"SELECT ?d (COUNT(*) AS ?c) WHERE {{ {BODY} }} GROUP BY ?d "
    f"ORDER BY ?c ?d LIMIT 2 OFFSET 1",
    # SELECT DISTINCT over grouped rows.
    f"SELECT DISTINCT (COUNT(*) AS ?c) WHERE {{ {BODY} }} GROUP BY ?d",
    # Two group keys.
    f"SELECT ?d ?v (COUNT(*) AS ?c) WHERE {{ {BODY} }} GROUP BY ?d ?v",
]


class TestFusedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(cube_rows, st.sampled_from(AGG_QUERIES))
    def test_fused_matches_term_space(self, rows, text):
        graph = build_cube(rows)
        query = parse_query(text)
        fused = Evaluator(graph, compile=True).select(query)
        legacy = Evaluator(graph, compile=False).select(query)
        assert fused == legacy
        # Exact row order matters for OFFSET/LIMIT without full ordering;
        # both engines stream groups in first-occurrence order.
        assert fused.rows == legacy.rows

    @settings(max_examples=30, deadline=None)
    @given(cube_rows, st.sampled_from(AGG_QUERIES))
    def test_fused_matches_without_optimizer(self, rows, text):
        graph = build_cube(rows)
        query = parse_query(text)
        fused = Evaluator(graph, optimize=False, compile=True).select(query)
        legacy = Evaluator(graph, optimize=False, compile=False).select(query)
        assert fused == legacy

    def test_qualifying_queries_actually_fuse(self):
        """Every shape the equivalence property runs must take the fused
        path — otherwise the property would vacuously compare legacy to
        legacy.  Since the unified operator layer, that includes the
        OPTIONAL COUNT(?v) shape that used to decline."""
        graph = build_cube([(0, 0, 1, True), (1, 1, 2, True)])
        for text in AGG_QUERIES:
            assert compile_aggregate(graph, parse_query(text)) is not None, text

    def test_sum_error_semantics_match(self):
        """A non-numeric value makes SUM error → projected as None."""
        graph = Graph()
        graph.add(Triple(iri("obs0"), iri("dim"), iri("d0")))
        graph.add(Triple(iri("obs0"), iri("val"), Literal("not-a-number")))
        graph.add(Triple(iri("obs1"), iri("dim"), iri("d0")))
        graph.add(Triple(iri("obs1"), iri("val"), literal_from_python(3)))
        text = f"SELECT ?d (SUM(?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d"
        fused = Evaluator(graph, compile=True).select(text)
        legacy = Evaluator(graph, compile=False).select(text)
        assert fused == legacy
        assert fused.rows[0][1] is None

    def test_group_concat_blank_node_errors(self):
        from repro.rdf import BNode

        graph = Graph()
        graph.add(Triple(iri("obs0"), iri("dim"), iri("d0")))
        graph.add(Triple(iri("obs0"), iri("val2"), BNode("b0")))
        text = (
            f"SELECT ?d (GROUP_CONCAT(?v) AS ?g) WHERE "
            f"{{ ?o <{EX}dim> ?d . ?o <{EX}val2> ?v . }} GROUP BY ?d"
        )
        fused = Evaluator(graph, compile=True).select(text)
        legacy = Evaluator(graph, compile=False).select(text)
        assert fused == legacy
        assert fused.rows[0][1] is None

    def test_never_ready_filter_drops_all_rows(self):
        """A FILTER over a variable no pattern binds errors every row."""
        graph = build_cube([(0, 0, 1, True), (1, 1, 2, True)])
        text = (
            f"SELECT ?d (COUNT(*) AS ?c) WHERE {{ {BODY} "
            f"FILTER(?nowhere > 1) }} GROUP BY ?d"
        )
        assert compile_aggregate(graph, parse_query(text)) is not None
        fused = Evaluator(graph, compile=True).select(text)
        legacy = Evaluator(graph, compile=False).select(text)
        assert fused == legacy
        assert len(fused) == 0


class TestNewlyFusedShapes:
    """Shapes the old BGP-only fuser declined now ride the unified
    operator pipeline: they must compile AND match the term-space path."""

    def _check_fuses(self, graph, text):
        query = parse_query(text)
        assert compile_aggregate(graph, query) is not None
        fused = Evaluator(graph, compile=True).select(query)
        legacy = Evaluator(graph, compile=False).select(query)
        assert fused == legacy

    def test_optional_group(self):
        graph = build_cube([(0, 0, 2, True), (1, 1, 3, False)])
        self._check_fuses(
            graph,
            f"SELECT ?d (COUNT(*) AS ?c) WHERE {{ ?o <{EX}dim> ?d . "
            f"OPTIONAL {{ ?o <{EX}val> ?v . }} }} GROUP BY ?d",
        )

    def test_property_path(self):
        graph = build_cube([(0, 0, 2, True), (1, 2, 3, True)])
        self._check_fuses(
            graph,
            f"SELECT ?d (COUNT(*) AS ?c) WHERE {{ ?o <{EX}dim>/<{EX}nothing>* ?d . }} "
            f"GROUP BY ?d",
        )

    def test_union_group(self):
        graph = build_cube([(0, 0, 2, True), (1, 1, 3, True)])
        self._check_fuses(
            graph,
            f"SELECT ?d (COUNT(*) AS ?c) WHERE {{ "
            f"{{ ?o <{EX}dim> ?d . }} UNION {{ ?o <{EX}val> ?d . }} }} GROUP BY ?d",
        )

    def test_values_group(self):
        graph = build_cube([(0, 0, 2, True), (1, 1, 3, True)])
        self._check_fuses(
            graph,
            f"SELECT ?d (COUNT(*) AS ?c) WHERE {{ "
            f"VALUES (?d) {{ (<{EX}d0>) (<{EX}d1>) }} ?o <{EX}dim> ?d . }} "
            f"GROUP BY ?d",
        )

    def test_bind_group(self):
        # Formerly the "bind" decline: BIND bodies now lower onto BindOp
        # and fuse with the aggregator.
        graph = build_cube([(0, 0, 2, True), (1, 1, 3, True)])
        self._check_fuses(
            graph,
            f"SELECT ?w (COUNT(*) AS ?c) WHERE {{ ?o <{EX}dim> ?d . "
            f"BIND(?d AS ?w) }} GROUP BY ?w",
        )

    def test_exists_group(self):
        # Formerly the "exists-filter" decline.
        graph = build_cube([(0, 0, 2, True), (0, 1, 3, True), (1, 0, 4, True)])
        self._check_fuses(
            graph,
            f"SELECT ?d (COUNT(*) AS ?c) WHERE {{ ?o <{EX}dim> ?d . "
            f"FILTER NOT EXISTS {{ ?o <{EX}val> ?v . }} }} GROUP BY ?d",
        )

    def test_minus_group(self):
        # Formerly the "minus" decline.
        graph = build_cube([(0, 0, 2, True), (0, 1, 3, True), (1, 0, 4, True)])
        self._check_fuses(
            graph,
            f"SELECT ?d (COUNT(*) AS ?c) WHERE {{ ?o <{EX}dim> ?d . "
            f"MINUS {{ ?o <{EX}dim> <{EX}d1> . }} }} GROUP BY ?d",
        )

    def test_subquery_group(self):
        # Formerly the "subquery" decline: the inner SELECT compiles to
        # its own plan and joins like VALUES rows.
        graph = build_cube([(0, 0, 2, True), (0, 1, 3, True), (1, 0, 4, True)])
        self._check_fuses(
            graph,
            f"SELECT ?d (COUNT(*) AS ?c) WHERE {{ "
            f"{{ SELECT ?o WHERE {{ ?o <{EX}val> ?v . }} }} "
            f"?o <{EX}dim> ?d . }} GROUP BY ?d",
        )

    def test_repeated_variable_pattern(self):
        # Formerly the "repeated-variable" decline — the oldest term-space
        # fallback.  The scratch-register equality check now compiles it:
        # only the genuine self-loop survives.
        graph = Graph()
        graph.add(Triple(iri("n0"), iri("p"), iri("n0")))
        graph.add(Triple(iri("n0"), iri("p"), iri("n1")))
        text = f"SELECT (COUNT(*) AS ?c) WHERE {{ ?x <{EX}p> ?x . }}"
        self._check_fuses(graph, text)
        fused = Evaluator(graph, compile=True).select(text)
        assert fused.rows[0][0].lexical == "1"


class TestFallbackShapes:
    """Non-qualifying queries must decline compilation — with a stable
    reason string — and still answer correctly via the term-space path."""

    def _check_declines(self, graph, text, reason):
        query = parse_query(text)
        plan, got_reason = compile_aggregate_ex(graph, query)
        assert plan is None
        assert got_reason == reason
        fused_engine = Evaluator(graph, compile=True).select(query)
        legacy = Evaluator(graph, compile=False).select(query)
        assert fused_engine == legacy

    def test_computed_aggregate_argument(self):
        graph = build_cube([(0, 0, 2, True), (0, 1, 3, True), (1, 0, 4, True)])
        self._check_declines(
            graph,
            f"SELECT ?d (SUM(?v + ?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d",
            "aggregate-argument",
        )

    def test_non_aggregate_query_declines(self):
        graph = build_cube([(0, 0, 2, True)])
        query = parse_query(f"SELECT ?d WHERE {{ ?o <{EX}dim> ?d . }}")
        plan, reason = compile_aggregate_ex(graph, query)
        assert plan is None
        assert reason == "not-aggregate"


class TestPlanCacheAndCounters:
    def _cube(self):
        return build_cube(
            [(0, 0, 2, True), (0, 1, 3, True), (1, 0, 4, True), (2, 2, 5, True)]
        )

    def test_aggregate_plan_cached_and_invalidated_by_epoch(self):
        graph = self._cube()
        cache = QueryCache()
        evaluator = Evaluator(graph, plan_cache=cache.plans)
        text = f"SELECT ?d (SUM(?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d"
        query = parse_query(text)
        first = evaluator.select(query)
        misses = cache.plans.stats.misses
        again = evaluator.select(query)
        assert again == first
        # Second run hit the cached plan: no new plan-tier miss.
        assert cache.plans.stats.misses == misses
        assert cache.plans.stats.hits >= 1
        # A mutation bumps the epoch; the stale plan key is unreachable.
        graph.add(Triple(iri("obs9"), iri("dim"), iri("d0")))
        graph.add(Triple(iri("obs9"), iri("val"), literal_from_python(7)))
        refreshed = evaluator.select(query)
        assert cache.plans.stats.misses > misses
        legacy = Evaluator(graph, compile=False).select(query)
        assert refreshed == legacy

    def test_declined_compilation_is_cached(self):
        graph = self._cube()
        cache = QueryCache()
        evaluator = Evaluator(graph, plan_cache=cache.plans)
        text = (
            f"SELECT ?d (SUM(?v + ?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d"
        )
        query = parse_query(text)
        evaluator.select(query)
        hits = cache.plans.stats.hits
        evaluator.select(query)
        # The None (declined) entry is itself served from the cache.
        assert cache.plans.stats.hits > hits

    def test_endpoint_counts_fused_and_fallback(self):
        graph = self._cube()
        endpoint = Endpoint(graph)
        endpoint.select(f"SELECT ?d (SUM(?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d")
        endpoint.select(
            f"SELECT ?d (SUM(?v + ?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d"
        )
        endpoint.select(f"SELECT ?d WHERE {{ ?o <{EX}dim> ?d . }}")  # not aggregate
        stats = endpoint.stats.snapshot()
        assert stats.fused_aggregates == 1
        assert stats.fallback_aggregates == 1
        # The plain SELECT rides the compiled engine and is counted apart.
        assert stats.compiled_selects == 1
        assert stats.fallback_selects == 0
        assert stats.decline_reasons == {"aggregate-argument": 1}

    def test_no_compile_endpoint_counts_fallback(self):
        graph = self._cube()
        endpoint = Endpoint(graph, compile=False)
        endpoint.select(f"SELECT ?d (SUM(?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d")
        stats = endpoint.stats.snapshot()
        assert stats.fused_aggregates == 0
        assert stats.fallback_aggregates == 1

    def test_deadline_enforced_in_fused_loop(self):
        rows = [(i, i % 4, i % 7, True) for i in range(12)]
        graph = build_cube(rows)
        text = f"SELECT ?d (SUM(?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d"
        with pytest.raises(QueryTimeoutError):
            Evaluator(graph, compile=True).select(text, timeout=0)


class TestMinMaxSinglePass:
    """Satellite regression: the term-space MIN/MAX replaced its full sort
    with a single pass; tie handling must match the stable sort exactly."""

    def _graph_with_values(self, lexicals):
        graph = Graph()
        graph.add(Triple(iri("obs0"), iri("dim"), iri("d0")))
        for i, (lex, dtype) in enumerate(lexicals):
            subject = iri(f"obs{i}")
            graph.add(Triple(subject, iri("dim"), iri("d0")))
            graph.add(Triple(subject, iri("val"), Literal(lex, datatype=dtype)))
        return graph

    def test_min_max_tie_resolution(self):
        # "01"^^integer and "01"^^double share an identical sort key; the
        # stable sort kept first-for-MIN / last-for-MAX, and so must the
        # single pass — in both engines.
        ties = [("01", XSD_INTEGER), ("01", XSD_DOUBLE), ("1", XSD_INTEGER)]
        graph = self._graph_with_values(ties)
        text = (
            f"SELECT (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE {{ {BODY} }}"
        )
        legacy = Evaluator(graph, compile=False).select(text)
        fused = Evaluator(graph, compile=True).select(text)
        assert fused == legacy
        lo, hi = legacy.rows[0]
        assert (lo.lexical, lo.datatype) == ("01", XSD_INTEGER)  # first minimal
        assert (hi.lexical, hi.datatype) == ("1", XSD_INTEGER)  # last maximal

    def test_min_max_distinct_tie_resolution(self):
        # With DISTINCT the dedup keeps first occurrences, so a repeat of
        # an already-seen value must not become "the last maximal".
        values = [
            ("2", XSD_INTEGER),
            ("02", XSD_INTEGER),  # ties with "2" on sort key, distinct term
            ("2", XSD_INTEGER),  # repeat: ignored by DISTINCT
        ]
        graph = self._graph_with_values(values)
        text = f"SELECT (MAX(?v) AS ?hi) (MAX(DISTINCT ?v) AS ?dhi) WHERE {{ {BODY} }}"
        legacy = Evaluator(graph, compile=False).select(text)
        fused = Evaluator(graph, compile=True).select(text)
        assert fused == legacy
        # The winning lexical form ("2" vs "02") depends on row arrival
        # order, which the index does not promise; the invariant is that
        # both engines pick the same term and it is numerically maximal.
        for cell in legacy.rows[0]:
            assert cell.lexical in ("2", "02")
            assert cell.datatype == XSD_INTEGER

    def test_unbound_group_key_groups_kept(self):
        # Regression for the corrected comment in _aggregate: groups whose
        # key component is unbound are kept with a None cell, not dropped.
        graph = build_cube([(0, 0, 1, True), (1, 1, 2, True)])
        text = (
            f"SELECT ?nowhere (COUNT(*) AS ?c) WHERE {{ {BODY} }} "
            f"GROUP BY ?nowhere"
        )
        for compile_flag in (True, False):
            result = Evaluator(graph, compile=compile_flag).select(text)
            assert len(result) == 1
            assert result.rows[0][0] is None
            assert result.rows[0][1].lexical == "2"


class TestBoundedTopK:
    """The legacy ordering paths now use a bounded heap when LIMIT is
    present; results must be indistinguishable from the full sort."""

    def _graph(self):
        graph = Graph()
        for i in range(25):
            subject = iri(f"n{i}")
            graph.add(Triple(subject, iri("rank"), literal_from_python(i % 9)))
        return graph

    @pytest.mark.parametrize("compile_flag", [True, False])
    def test_limit_matches_full_sort_slice(self, compile_flag):
        graph = self._graph()
        base = f"SELECT ?s ?r WHERE {{ ?s <{EX}rank> ?r . }} ORDER BY ?r ?s"
        evaluator = Evaluator(graph, compile=compile_flag)
        full = evaluator.select(base)
        for limit, offset in [(3, 0), (5, 4), (1, 24), (30, 0), (0, 2)]:
            text = base + f" LIMIT {limit}" + (f" OFFSET {offset}" if offset else "")
            sliced = evaluator.select(text)
            assert sliced.rows == full.rows[offset:offset + limit]

    @pytest.mark.parametrize("compile_flag", [True, False])
    def test_distinct_not_truncated_by_topk(self, compile_flag):
        # DISTINCT collapses projected rows, so the solution-space top-k
        # must not engage: the LIMIT must still see enough distinct rows.
        graph = self._graph()
        text = (
            f"SELECT DISTINCT ?r WHERE {{ ?s <{EX}rank> ?r . }} "
            f"ORDER BY ?r LIMIT 5"
        )
        result = Evaluator(graph, compile=compile_flag).select(text)
        assert [row[0].lexical for row in result.rows] == ["0", "1", "2", "3", "4"]

    def test_aggregate_order_limit_uses_plan(self):
        graph = build_cube(
            [(i, i % 3, i, True) for i in range(12)]
        )
        text = (
            f"SELECT ?d (SUM(?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d "
            f"ORDER BY DESC(?s) LIMIT 1"
        )
        query = parse_query(text)
        plan = compile_aggregate(graph, query)
        assert isinstance(plan, AggregatePlan)
        fused = Evaluator(graph, compile=True).select(query)
        legacy = Evaluator(graph, compile=False).select(query)
        assert fused == legacy
        assert len(fused) == 1


class TestBatchedSumExactness:
    """_Sum.add_batch may group v*c only while every float addition the
    sequential fold would perform is exact — each value an integer below
    2**53 *and* |total| + Σ|v|·c below 2**53 (the bound on every
    intermediate partial sum) — otherwise it declines and the caller
    replays rows in order, keeping batched == tuple bit-for-bit."""

    def _sum_over(self, values_by_id):
        from repro.sparql.aggregator import _ExecState, _Sum

        terms = {i: literal_from_python(v) for i, v in values_by_id.items()}
        state = _ExecState(terms.__getitem__)
        return _Sum(state), state

    def test_small_integer_batch_folds(self):
        np = pytest.importorskip("numpy")
        acc, state = self._sum_over({0: 3, 1: 4})
        assert acc.add_batch(np.array([0, 1, 0]), 3, state) is True
        assert acc.total == 10.0
        assert acc.n == 3

    def test_declines_when_batch_mass_exceeds_exact_range(self):
        np = pytest.importorskip("numpy")
        # Each value passes the per-value check, but three of them push
        # the total past 2**53 where float addition stops being exact.
        acc, state = self._sum_over({0: 2 ** 52})
        assert acc.add_batch(np.array([0, 0, 0]), 3, state) is False
        assert acc.total == 0.0 and acc.n == 0

    def test_declines_on_noninteger_running_total(self):
        np = pytest.importorskip("numpy")
        acc, state = self._sum_over({0: 1})
        acc.total = 0.5  # an earlier inexact batch was replayed per-row
        assert acc.add_batch(np.array([0]), 1, state) is False
        assert acc.total == 0.5

    def test_large_value_sum_parity_end_to_end(self):
        # 3 × (2**53 - 1): sequential float folding rounds differently
        # than one grouped multiply, so the batched path must replay.
        graph = Graph()
        for i in range(3):
            graph.add(Triple(iri(f"obs{i}"), iri("dim"), iri("d0")))
            graph.add(Triple(iri(f"obs{i}"), iri("val"),
                             literal_from_python(2 ** 53 - 1)))
        graph.triple_index.flush()
        text = f"SELECT ?d (SUM(?v) AS ?s) WHERE {{ {BODY} }} GROUP BY ?d"
        batched = Evaluator(graph, compile=True, vectorize=True).select(text)
        tuple_engine = Evaluator(graph, compile=True, vectorize=False).select(text)
        legacy = Evaluator(graph, compile=False).select(text)
        assert batched.rows == tuple_engine.rows == legacy.rows
