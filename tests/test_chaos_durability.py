"""Chaos suite for the durability layer: real kills, concurrent readers.

Two storms, both seeded and matrix-driven like ``test_chaos.py``:

* **kill-at-random-point** — a child process ingests deterministic
  triples into a durable store, fsync-acknowledging each write into a
  side file, checkpointing periodically; the parent SIGKILLs it at a
  seeded random moment (override the matrix with ``REPRO_CRASH_SEEDS``).
  Recovery must yield a *contiguous prefix* of the deterministic stream
  containing every acknowledged write — the ISSUE's acceptance
  invariant, proven against a genuine ``kill -9``, not a simulation.

* **writer/reader storm** — one writer appends batches and checkpoints
  while reader threads continuously open the newest snapshot generation
  (CRC-verified, the serving layer's boot path).  Readers must never see
  a torn state: every snapshot they manage to open verifies clean and
  holds a whole number of batches.

Marked ``chaos`` and excluded from tier-1 (see pyproject.toml).
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import SnapshotError
from repro.rdf import IRI, Literal
from repro.rdf.triple import Triple
from repro.store import DurableGraph, load_snapshot
from repro.store.durable import list_generations

pytestmark = pytest.mark.chaos


def _matrix(var: str, default: str) -> list[int]:
    raw = os.environ.get(var, default)
    return [int(part) for part in raw.split(",") if part.strip()]


CRASH_SEEDS = _matrix("REPRO_CRASH_SEEDS", "0,1,2,7,13")
STORM_SEEDS = _matrix("REPRO_CHAOS_SEEDS", "0,1,2")


def t(i: int) -> Triple:
    return Triple(IRI(f"urn:s{i}"), IRI("urn:p"), Literal(str(i)))


# -- kill -9 at a random point ----------------------------------------------

#: The child: deterministic ingest, fsynced ack file, periodic checkpoints.
#: Run with ``python -c CHILD <store-dir> <ack-file>``; killed, never exits.
CHILD = """
import os, sys
from repro.rdf import IRI, Literal
from repro.rdf.triple import Triple
from repro.store import DurableGraph

directory, ack_path = sys.argv[1], sys.argv[2]
graph = DurableGraph.open(directory)
ack = open(ack_path, "a")
i = 0
while True:
    graph.add(Triple(IRI(f"urn:s{i}"), IRI("urn:p"), Literal(str(i))))
    # The write is durable (WAL fsynced) before we acknowledge it.
    ack.write(f"{i}\\n")
    ack.flush()
    os.fsync(ack.fileno())
    if i % 40 == 39:
        graph.checkpoint()
    i += 1
"""


@pytest.mark.parametrize("seed", CRASH_SEEDS)
def test_kill9_recovers_every_acknowledged_write(tmp_path, seed):
    store = str(tmp_path / "store")
    ack_path = str(tmp_path / "acks")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD, store, ack_path],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )
    try:
        rng = random.Random(seed)
        # Let the child boot and ingest, then pull the plug mid-flight.
        deadline = time.monotonic() + 30
        while not os.path.exists(ack_path) and time.monotonic() < deadline:
            if child.poll() is not None:
                pytest.fail(
                    f"child died before first ack: {child.stderr.read().decode()}"
                )
            time.sleep(0.01)
        assert os.path.exists(ack_path), "child never acknowledged a write"
        time.sleep(0.02 + rng.random() * 0.5)
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)

    # Acknowledged = complete lines of the fsynced ack file.
    with open(ack_path, "rb") as handle:
        raw = handle.read()
    complete = raw.rsplit(b"\n", 1)[0] if b"\n" in raw else b""
    acked = [int(line) for line in complete.split(b"\n") if line]
    assert acked == list(range(len(acked)))  # the stream is deterministic

    recovered = DurableGraph.open(store)
    try:
        present = len(recovered)
        # Zero losses: every acknowledged write survived the kill.
        assert present >= len(acked), (
            f"lost writes: {len(acked)} acked, {present} recovered (seed {seed})"
        )
        # Exact-prefix shape: what survived is the contiguous head of the
        # deterministic stream — never interleaved or corrupt. At most
        # one in-flight write past the last ack may have reached the WAL.
        assert present <= len(acked) + 1
        assert all(t(i) in recovered for i in range(present))
        assert t(present) not in recovered
    finally:
        recovered.close()


# -- concurrent writer/reader storm -----------------------------------------


@pytest.mark.parametrize("seed", STORM_SEEDS)
def test_writer_reader_storm_never_sees_torn_state(tmp_path, seed):
    directory = str(tmp_path / "store")
    batch = 7
    rounds = 40
    rng = random.Random(seed)
    writer_graph = DurableGraph.open(directory, fsync=False)
    stop = threading.Event()
    failures: list[str] = []
    snapshots_read = [0]

    def reader() -> None:
        while not stop.is_set():
            generations = list_generations(directory)
            if not generations:
                continue
            path = generations[0][2]
            try:
                # The serving layer's boot path: CRC-verified mmap load,
                # pinned to the snapshot's epoch (readonly SnapshotView).
                view = load_snapshot(path, readonly=True, verify=True)
            except SnapshotError as error:
                if "cannot open" in str(error) or "cannot map" in str(error):
                    continue  # generation pruned between listing and open
                failures.append(f"corrupt snapshot surfaced: {error}")
                return
            count = len(view)
            if count % batch:
                failures.append(f"torn state: {count} not a multiple of {batch}")
                return
            snapshots_read[0] += 1

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        for round_no in range(rounds):
            writer_graph.add_all(
                [t(round_no * batch + k) for k in range(batch)]
            )
            if rng.random() < 0.4:
                writer_graph.checkpoint()
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        writer_graph.close()
    assert not failures, failures
    assert snapshots_read[0] > 0, "readers never managed to open a snapshot"

    # And the final reopen agrees with everything the writer submitted.
    recovered = DurableGraph.open(directory, fsync=False)
    try:
        assert len(recovered) == rounds * batch
    finally:
        recovered.close()
