"""Unit tests for the RDF term model."""

import math
from datetime import date, datetime
from decimal import Decimal

import pytest

from repro.rdf import (
    IRI,
    BNode,
    Literal,
    Variable,
    XSD_BOOLEAN,
    XSD_DATE,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    literal_from_python,
)


class TestIRI:
    def test_equality_and_hash(self):
        a = IRI("http://example.org/x")
        b = IRI("http://example.org/x")
        assert a == b
        assert hash(a) == hash(b)
        assert a != IRI("http://example.org/y")

    def test_n3(self):
        assert IRI("http://example.org/x").n3() == "<http://example.org/x>"

    def test_local_name(self):
        assert IRI("http://example.org/schema#Country").local_name() == "Country"
        assert IRI("http://example.org/Germany").local_name() == "Germany"
        assert IRI("urn:thing").local_name() == "urn:thing"

    def test_immutability(self):
        iri = IRI("http://example.org/x")
        with pytest.raises(AttributeError):
            iri.value = "other"

    def test_rejects_empty_and_non_string(self):
        with pytest.raises(ValueError):
            IRI("")
        with pytest.raises(TypeError):
            IRI(42)

    def test_not_equal_to_literal_with_same_text(self):
        assert IRI("http://example.org/x") != Literal("http://example.org/x")


class TestBNode:
    def test_fresh_labels_are_unique(self):
        assert BNode() != BNode()

    def test_explicit_label(self):
        assert BNode("n1") == BNode("n1")
        assert BNode("n1").n3() == "_:n1"

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            BNode("has space")


class TestLiteral:
    def test_plain_literal(self):
        lit = Literal("Germany")
        assert lit.n3() == '"Germany"'
        assert lit.to_python() == "Germany"
        assert not lit.is_numeric

    def test_language_tagged(self):
        lit = Literal("Germany", language="en")
        assert lit.n3() == '"Germany"@en'
        assert lit.language == "en"

    def test_language_tag_normalized_to_lowercase(self):
        assert Literal("x", language="EN") == Literal("x", language="en")

    def test_datatype_and_language_are_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD_INTEGER, language="en")

    def test_integer_roundtrip(self):
        lit = Literal("403", datatype=XSD_INTEGER)
        assert lit.to_python() == 403
        assert lit.is_numeric
        assert lit.numeric_value() == 403.0

    def test_double_and_decimal(self):
        assert Literal("1.5", datatype=XSD_DOUBLE).to_python() == 1.5
        assert Literal("1.5", datatype=XSD_DECIMAL).to_python() == Decimal("1.5")

    def test_boolean(self):
        assert Literal("true", datatype=XSD_BOOLEAN).to_python() is True
        assert Literal("false", datatype=XSD_BOOLEAN).to_python() is False
        with pytest.raises(ValueError):
            Literal("maybe", datatype=XSD_BOOLEAN).to_python()

    def test_date(self):
        assert Literal("2014-10-01", datatype=XSD_DATE).to_python() == date(2014, 10, 1)

    def test_numeric_value_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            Literal("abc").numeric_value()

    def test_escaping_in_n3(self):
        lit = Literal('say "hi"\n')
        assert lit.n3() == '"say \\"hi\\"\\n"'

    def test_numeric_sort_order(self):
        values = [Literal(str(v), datatype=XSD_INTEGER) for v in (10, 2, 33)]
        ordered = sorted(values)
        assert [v.lexical for v in ordered] == ["2", "10", "33"]

    def test_cross_kind_ordering(self):
        # IRIs < BNodes < Literals by design.
        terms = [Literal("z"), BNode("a"), IRI("urn:a")]
        ordered = sorted(terms)
        assert isinstance(ordered[0], IRI)
        assert isinstance(ordered[1], BNode)
        assert isinstance(ordered[2], Literal)


class TestVariable:
    def test_strip_question_mark(self):
        assert Variable("?obs") == Variable("obs")
        assert Variable("$obs") == Variable("obs")

    def test_n3(self):
        assert Variable("obs").n3() == "?obs"

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            Variable("not valid")


class TestLiteralFromPython:
    def test_int(self):
        lit = literal_from_python(403)
        assert lit.datatype == XSD_INTEGER
        assert lit.lexical == "403"

    def test_bool_before_int(self):
        # bool is a subclass of int; must map to xsd:boolean.
        assert literal_from_python(True).datatype == XSD_BOOLEAN

    def test_float(self):
        assert literal_from_python(1.5).datatype == XSD_DOUBLE

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            literal_from_python(float("nan"))
        with pytest.raises(ValueError):
            literal_from_python(math.inf)

    def test_str(self):
        lit = literal_from_python("Germany")
        assert lit.datatype is None

    def test_datetime(self):
        lit = literal_from_python(datetime(2014, 10, 1, 12, 0))
        assert lit.to_python() == datetime(2014, 10, 1, 12, 0)

    def test_passthrough_literal(self):
        lit = Literal("x")
        assert literal_from_python(lit) is lit

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            literal_from_python(object())
