"""Unit tests for BGP cardinality estimation and join ordering."""

import pytest

from repro.rdf import IRI, Triple, Variable, literal_from_python
from repro.sparql import parse_query
from repro.sparql.ast import SequencePath, TriplePattern
from repro.sparql.optimizer import estimate_cardinality, order_patterns
from repro.store import Graph

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


@pytest.fixture
def graph():
    g = Graph()
    # 100 'common' edges, 2 'rare' edges, 1 'unique' edge.
    for i in range(100):
        g.add(Triple(iri(f"s{i}"), iri("common"), iri(f"o{i % 10}")))
    g.add(Triple(iri("s0"), iri("rare"), iri("x")))
    g.add(Triple(iri("s1"), iri("rare"), iri("y")))
    g.add(Triple(iri("s0"), iri("unique"), iri("z")))
    return g


class TestEstimateCardinality:
    def test_constant_predicate(self, graph):
        p = TriplePattern(Variable("s"), iri("common"), Variable("o"))
        assert estimate_cardinality(graph, p) == 100

    def test_constant_object_narrows(self, graph):
        p = TriplePattern(Variable("s"), iri("common"), iri("o3"))
        assert estimate_cardinality(graph, p) == 10

    def test_fully_bound(self, graph):
        p = TriplePattern(iri("s0"), iri("unique"), iri("z"))
        assert estimate_cardinality(graph, p) == 1

    def test_variable_predicate(self, graph):
        p = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        assert estimate_cardinality(graph, p) == len(graph)

    def test_path_uses_first_step(self, graph):
        path = SequencePath((iri("rare"), iri("common")))
        p = TriplePattern(Variable("s"), path, Variable("o"))
        assert estimate_cardinality(graph, p) == 2

    def test_unknown_predicate_is_zero(self, graph):
        p = TriplePattern(Variable("s"), iri("never"), Variable("o"))
        assert estimate_cardinality(graph, p) == 0


class TestOrderPatterns:
    def test_most_selective_first(self, graph):
        patterns = [
            TriplePattern(Variable("a"), iri("common"), Variable("b")),
            TriplePattern(Variable("a"), iri("rare"), Variable("c")),
            TriplePattern(Variable("a"), iri("unique"), Variable("d")),
        ]
        ordered = order_patterns(graph, list(patterns))
        predicates = [p.p for p in ordered]
        assert predicates == [iri("unique"), iri("rare"), iri("common")]

    def test_join_discount_prefers_connected(self, graph):
        # After the rare pattern binds ?a, the common pattern sharing ?a
        # must come before a disconnected pattern of equal base cost.
        patterns = [
            TriplePattern(Variable("x"), iri("common"), Variable("y")),  # disconnected
            TriplePattern(Variable("a"), iri("common"), Variable("b")),  # joins ?a
            TriplePattern(Variable("a"), iri("rare"), Variable("c")),
        ]
        ordered = order_patterns(graph, list(patterns))
        assert ordered[0].p == iri("rare")
        assert Variable("a") in ordered[1].variables()

    def test_bound_seed_variables(self, graph):
        patterns = [
            TriplePattern(Variable("a"), iri("common"), Variable("b")),
            TriplePattern(Variable("z"), iri("rare"), Variable("w")),
        ]
        # With ?a pre-bound by VALUES, the common pattern becomes cheap.
        ordered = order_patterns(graph, list(patterns), bound={Variable("a")})
        assert ordered[0].p == iri("common")

    def test_order_preserves_multiset(self, graph):
        patterns = [
            TriplePattern(Variable("a"), iri("common"), Variable("b")),
            TriplePattern(Variable("b"), iri("rare"), Variable("c")),
            TriplePattern(Variable("c"), iri("unique"), Variable("d")),
        ]
        ordered = order_patterns(graph, list(patterns))
        assert sorted(map(repr, ordered)) == sorted(map(repr, patterns))

    def test_empty_and_single(self, graph):
        assert order_patterns(graph, []) == []
        single = [TriplePattern(Variable("a"), iri("rare"), Variable("b"))]
        assert order_patterns(graph, list(single)) == single
