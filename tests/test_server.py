"""HTTP front-end tests: protocol conformance, sessions, tenancy, shutdown.

Covers the four serving promises of :mod:`repro.server`:

* SPARQL 1.1 protocol conformance — GET / form POST / direct POST, result
  content negotiation, and the documented error-status mapping;
* the JSON session API is *transparent*: a dialogue driven over HTTP
  produces exactly the candidates, results, and history an in-process
  :class:`ExplorationSession` produces;
* tenancy — token-bucket quotas answer 429 with Retry-After, and the fair
  dispatcher's round-robin keeps a hot tenant from starving a slow one;
* graceful shutdown loses zero in-flight responses.

The servers run on an event-loop thread (``serve_in_thread``) and the
tests speak plain ``http.client`` — the same way the CLI and benchmarks
drive the stack.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse

import pytest

from repro.core import ExplorationSession
from repro.errors import QueryTimeoutError
from repro.qb import OBSERVATION_CLASS
from repro.resilience import FaultInjector, FaultPlan
from repro.server import (
    DEFAULT_TENANT,
    FairDispatcher,
    TokenBucket,
    serve_in_thread,
)
from repro.serving import QueryService
from repro.serving.executor import ServingExecutor
from repro.sparql.results import to_csv, to_sparql_json, to_tsv

SELECT_Q = (
    f"SELECT ?s WHERE {{ ?s a <{OBSERVATION_CLASS}> }} ORDER BY ?s LIMIT 10"
)
ASK_Q = f"ASK {{ ?s a <{OBSERVATION_CLASS}> }}"
CONSTRUCT_Q = (
    f"CONSTRUCT {{ ?s a <{OBSERVATION_CLASS}> }} "
    f"WHERE {{ ?s a <{OBSERVATION_CLASS}> }}"
)


class Client:
    """A minimal blocking HTTP client bound to one server and tenant."""

    def __init__(self, handle, tenant: str | None = None):
        self.host = handle.server.host
        self.port = handle.server.port
        self.tenant = tenant

    def request(self, method, path, body=None, headers=None, timeout=30):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            sent = dict(headers or {})
            if self.tenant is not None:
                sent["X-Repro-Tenant"] = self.tenant
            conn.request(method, path, body=body, headers=sent)
            response = conn.getresponse()
            data = response.read()
            return response.status, dict(
                (k.lower(), v) for k, v in response.getheaders()), data
        finally:
            conn.close()

    def get(self, path, headers=None):
        return self.request("GET", path, headers=headers)

    def sparql(self, query, accept=None, timeout_param=None, method="GET"):
        params = {"query": query}
        if timeout_param is not None:
            params["timeout"] = timeout_param
        encoded = urllib.parse.urlencode(params)
        headers = {"Accept": accept} if accept else {}
        if method == "GET":
            return self.request("GET", f"/sparql?{encoded}", headers=headers)
        headers["Content-Type"] = "application/x-www-form-urlencoded"
        return self.request("POST", "/sparql", body=encoded, headers=headers)

    def json(self, method, path, document=None, headers=None):
        body = None if document is None else json.dumps(document)
        status, _, data = self.request(method, path, body=body,
                                       headers=headers)
        return status, json.loads(data)


@pytest.fixture(scope="module")
def server(mini_kg):
    service = QueryService(mini_kg.endpoint(), workers=4)
    handle = serve_in_thread(service, own_service=True)
    yield handle
    handle.close()


@pytest.fixture(scope="module")
def client(server):
    return Client(server)


def expected(server, query, writer=to_sparql_json):
    return writer(server.server.service.execute(query))


# -- SPARQL protocol ---------------------------------------------------------


class TestSparqlProtocol:
    def test_get_select_json(self, server, client):
        status, headers, body = client.sparql(SELECT_Q)
        assert status == 200
        assert headers["content-type"].startswith(
            "application/sparql-results+json")
        document = json.loads(body)
        assert document == json.loads(expected(server, SELECT_Q))
        assert document["head"]["vars"] == ["s"]
        assert len(document["results"]["bindings"]) == 10

    def test_form_post_matches_get(self, server, client):
        get_body = client.sparql(SELECT_Q)[2]
        status, _, post_body = client.sparql(SELECT_Q, method="POST")
        assert status == 200
        assert post_body == get_body

    def test_direct_post(self, client):
        status, _, body = client.request(
            "POST", "/sparql", body=ASK_Q,
            headers={"Content-Type": "application/sparql-query"})
        assert status == 200
        assert json.loads(body) == {"head": {}, "boolean": True}

    def test_ask_json(self, client):
        status, _, body = client.sparql(ASK_Q)
        assert status == 200
        assert json.loads(body)["boolean"] is True

    def test_construct_returns_ntriples(self, client):
        status, headers, body = client.sparql(CONSTRUCT_Q)
        assert status == 200
        assert headers["content-type"].startswith("application/n-triples")
        lines = [l for l in body.decode().splitlines() if l.strip()]
        assert len(lines) == 120  # every observation, one triple each
        assert all(line.endswith(" .") for line in lines)

    def test_conneg_csv(self, server, client):
        status, headers, body = client.sparql(SELECT_Q, accept="text/csv")
        assert status == 200
        assert headers["content-type"].startswith("text/csv")
        assert body.decode() == expected(server, SELECT_Q, to_csv)

    def test_conneg_tsv(self, server, client):
        status, headers, body = client.sparql(
            SELECT_Q, accept="text/tab-separated-values")
        assert status == 200
        assert headers["content-type"].startswith("text/tab-separated-values")
        assert body.decode() == expected(server, SELECT_Q, to_tsv)

    def test_conneg_honors_q_values(self, client):
        status, headers, _ = client.sparql(
            ASK_Q,
            accept="text/csv;q=0.3, application/sparql-results+json;q=0.9")
        assert status == 200
        assert headers["content-type"].startswith(
            "application/sparql-results+json")

    def test_conneg_wildcard_is_json(self, client):
        status, headers, _ = client.sparql(ASK_Q, accept="*/*")
        assert status == 200
        assert headers["content-type"].startswith(
            "application/sparql-results+json")

    def test_conneg_unsupported_is_406(self, client):
        status, _, body = client.sparql(ASK_Q, accept="application/xml")
        assert status == 406
        assert json.loads(body)["error"]["status"] == 406

    def test_missing_query_is_400(self, client):
        status, _, body = client.get("/sparql")
        assert status == 400
        assert "query" in json.loads(body)["error"]["message"]

    def test_parse_error_is_400(self, client):
        status, _, body = client.sparql("SELEC ?s WHERE { ?s ?p ?o }")
        assert status == 400
        assert json.loads(body)["error"]["type"] == "parse"

    def test_unsupported_media_type_is_415(self, client):
        status, _, _ = client.request(
            "POST", "/sparql", body=ASK_Q,
            headers={"Content-Type": "text/plain"})
        assert status == 415

    def test_wrong_method_is_405(self, client):
        status, _, _ = client.request("PUT", "/sparql", body="x")
        assert status == 405

    def test_unknown_route_is_404(self, client):
        status, _, body = client.get("/nope")
        assert status == 404
        assert json.loads(body)["error"]["status"] == 404

    def test_healthz(self, client):
        status, _, body = client.get("/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_explicit_timeout_zero_is_504(self, client):
        # The boundary must pass 0 through literally (an already-expired
        # budget), not fall back to the endpoint default.
        status, _, body = client.sparql(SELECT_Q, timeout_param="0")
        assert status == 504
        assert json.loads(body)["error"]["type"] == "timeout"

    def test_explicit_timeout_none_disables(self, client):
        status, _, _ = client.sparql(SELECT_Q, timeout_param="none")
        assert status == 200

    def test_malformed_timeout_is_400(self, client):
        status, _, _ = client.sparql(SELECT_Q, timeout_param="soon")
        assert status == 400
        status, _, _ = client.sparql(SELECT_Q, timeout_param="-1")
        assert status == 400


# -- session API -------------------------------------------------------------


class TestSessionAPI:
    def _open(self, client):
        status, document = client.json("POST", "/sessions")
        assert status == 201
        return document

    def test_lifecycle_matches_in_process(self, server, client, mini_kg,
                                          mini_vgraph):
        reference = ExplorationSession(mini_kg.endpoint(), mini_vgraph)
        opened = self._open(client)
        sid = opened["session"]
        assert opened["refinement_kinds"] == reference.refinement_kinds()

        # synthesize: identical candidate list, same order.
        status, step = client.json(
            "POST", f"/sessions/{sid}/steps",
            {"action": "synthesize", "values": ["Germany", "2014"]})
        assert status == 200 and step["ok"] and not step["degraded"]
        ref_candidates = reference.step("synthesize", "Germany", "2014").value
        assert [c["description"] for c in step["candidates"]] == [
            q.description for q in ref_candidates]
        assert [c["sparql"] for c in step["candidates"]] == [
            q.sparql() for q in ref_candidates]

        # choose: identical result set.
        status, step = client.json(
            "POST", f"/sessions/{sid}/steps", {"action": "choose", "index": 0})
        assert status == 200 and step["ok"]
        ref_results = reference.step("choose", 0).value
        ref_document = json.loads(to_sparql_json(ref_results))
        assert step["results"]["size"] == len(ref_results)
        assert step["results"]["vars"] == ref_document["head"]["vars"]
        canonical = lambda rows: sorted(json.dumps(r, sort_keys=True)
                                        for r in rows)
        assert canonical(step["results"]["bindings"]) == canonical(
            ref_document["results"]["bindings"])

        # refinements menu: identical explanations.
        status, step = client.json(
            "POST", f"/sessions/{sid}/steps",
            {"action": "refinements", "kind": "disaggregate"})
        assert status == 200 and step["ok"]
        ref_menu = reference.step("refinements", "disaggregate").value
        assert [p["explanation"] for p in step["refinements"]["disaggregate"]
                ] == [p.explanation for p in ref_menu]
        assert ref_menu, "mini KG must offer a disaggregation"

        # apply: identical refined result.
        status, step = client.json(
            "POST", f"/sessions/{sid}/steps",
            {"action": "apply", "kind": "disaggregate", "index": 0})
        assert status == 200 and step["ok"]
        ref_refined = reference.step(
            "apply", ref_menu[0], options_offered=len(ref_menu)).value
        assert step["results"]["size"] == len(ref_refined)

        # back: both rewind to the same query.
        status, step = client.json(
            "POST", f"/sessions/{sid}/steps", {"action": "back"})
        assert status == 200 and step["ok"]
        reference.step("back")
        status, state = client.json("GET", f"/sessions/{sid}")
        assert status == 200
        assert state["current"]["description"] == reference.query.description
        assert len(state["steps"]) == len(reference.history)
        assert [s["kind"] for s in state["steps"]] == [
            s.kind for s in reference.history]
        assert state["degraded_steps"] == 0
        assert state["steps_taken"] == 5

    def test_choose_out_of_range_is_rejected_not_500(self, client):
        sid = self._open(client)["session"]
        client.json("POST", f"/sessions/{sid}/steps",
                    {"action": "synthesize", "values": ["Germany"]})
        status, step = client.json(
            "POST", f"/sessions/{sid}/steps", {"action": "choose",
                                               "index": 999})
        assert status == 200
        assert step["ok"] is False and step["error"]

    def test_all_refinements_returns_every_menu(self, client):
        sid = self._open(client)["session"]
        client.json("POST", f"/sessions/{sid}/steps",
                    {"action": "synthesize", "values": ["Germany", "2014"]})
        client.json("POST", f"/sessions/{sid}/steps",
                    {"action": "choose", "index": 0})
        status, step = client.json("POST", f"/sessions/{sid}/steps",
                                   {"action": "all_refinements"})
        assert status == 200 and step["ok"]
        assert "disaggregate" in step["refinements"]

    def test_malformed_steps_are_400(self, client):
        sid = self._open(client)["session"]
        bad = [
            {},
            {"action": 7},
            {"action": "synthesize"},
            {"action": "synthesize", "values": []},
            {"action": "synthesize", "values": [1, 2]},
            {"action": "choose"},
            {"action": "choose", "index": "first"},
            {"action": "choose", "index": True},
            {"action": "refinements"},
            {"action": "apply", "kind": "disaggregate"},
            {"action": "teleport"},
        ]
        for payload in bad:
            status, document = client.json(
                "POST", f"/sessions/{sid}/steps", payload)
            assert status == 400, payload
            assert document["error"]["status"] == 400
        status, _ = client.json("POST", f"/sessions/{sid}/steps")
        assert status == 400  # empty body has no action either

    def test_apply_index_out_of_range_is_400(self, client):
        sid = self._open(client)["session"]
        client.json("POST", f"/sessions/{sid}/steps",
                    {"action": "synthesize", "values": ["Germany", "2014"]})
        client.json("POST", f"/sessions/{sid}/steps",
                    {"action": "choose", "index": 0})
        status, document = client.json(
            "POST", f"/sessions/{sid}/steps",
            {"action": "apply", "kind": "disaggregate", "index": 99})
        assert status == 400
        assert "out of range" in document["error"]["message"]

    def test_tenant_isolation(self, server):
        alice = Client(server, tenant="alice")
        mallory = Client(server, tenant="mallory")
        sid = self._open(alice)["session"]
        assert sid in alice.json("GET", "/sessions")[1]["sessions"]

        # A foreign session id behaves exactly like a missing one.
        assert mallory.json("GET", f"/sessions/{sid}")[0] == 404
        assert mallory.json("POST", f"/sessions/{sid}/steps",
                            {"action": "back"})[0] == 404
        assert mallory.json("DELETE", f"/sessions/{sid}")[0] == 404
        assert sid not in mallory.json("GET", "/sessions")[1]["sessions"]

        status, document = alice.json("DELETE", f"/sessions/{sid}")
        assert status == 200 and document == {"closed": sid}
        assert alice.json("GET", f"/sessions/{sid}")[0] == 404

    def test_unknown_session_is_404(self, client):
        assert client.json("GET", "/sessions/s999999")[0] == 404


# -- tenancy: quotas and fairness --------------------------------------------


class TestTokenBucket:
    def test_grants_until_burst_then_denies_with_hint(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_take() == 0.0
        assert bucket.try_take() == 0.0
        assert bucket.try_take() == pytest.approx(1.0)
        now[0] += 0.5
        assert bucket.try_take() == pytest.approx(0.5)  # refill is partial
        now[0] += 0.5
        assert bucket.try_take() == 0.0
        assert bucket.tokens == pytest.approx(0.0)

    def test_unlimited_bucket_always_grants(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.try_take() == 0.0 for _ in range(1000))
        assert bucket.tokens == float("inf")
        assert TokenBucket(rate=0.0).try_take() == 0.0

    def test_burst_must_cover_one_request(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestQuotaOverHTTP:
    def test_429_with_retry_after(self, server):
        server.server.configure_tenant("metered", quota_rate=0.001,
                                       quota_burst=2)
        metered = Client(server, tenant="metered")
        assert metered.sparql(ASK_Q)[0] == 200
        assert metered.sparql(ASK_Q)[0] == 200
        status, headers, body = metered.sparql(ASK_Q)
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        assert json.loads(body)["error"]["type"] == "quota"

        # The denial is per tenant: everyone else keeps flowing.
        assert Client(server).sparql(ASK_Q)[0] == 200
        _, stats = Client(server).json("GET", "/stats")
        assert stats["tenants"]["metered"]["quota_denied"] == 1


class TestFairDispatcher:
    def test_round_robin_beats_a_hot_backlog(self):
        """A single queued slow-tenant task runs within one round-robin
        cycle, not behind the hot tenant's whole backlog."""
        executor = ServingExecutor(workers=1)
        dispatcher = FairDispatcher(executor, max_queue=128)
        order: list[str] = []
        lock = threading.Lock()

        def task(tag):
            time.sleep(0.005)
            with lock:
                order.append(tag)
            return tag

        try:
            hot = [dispatcher.submit("hot", task, f"hot-{i}")
                   for i in range(20)]
            deadline = time.monotonic() + 5
            while not order and time.monotonic() < deadline:
                time.sleep(0.001)  # let the backlog start draining
            slow = dispatcher.submit("slow", task, "slow")
            assert slow.result(timeout=10) == "slow"
            for future in hot:
                future.result(timeout=10)
            with lock:
                position = order.index("slow")
            # FIFO would put it at position 20; fair dispatch runs it on
            # the next cycle (a little slack for dispatch-loop races).
            assert position <= 4, f"slow tenant starved: order={order}"
            stats = dispatcher.tenant_stats()
            assert stats["hot"].completed == 20
            assert stats["slow"].completed == 1
        finally:
            dispatcher.shutdown()
            executor.shutdown()

    def test_lane_overflow_is_admission_error(self):
        from repro.errors import AdmissionError

        executor = ServingExecutor(workers=1)
        dispatcher = FairDispatcher(executor, max_queue=2)
        gate = threading.Event()
        try:
            futures = []
            for _ in range(8):
                try:
                    futures.append(dispatcher.submit("t", gate.wait, 5))
                except AdmissionError:
                    break
            else:
                pytest.fail("lane never filled")
            assert dispatcher.tenant_stats()["t"].rejected >= 1
            gate.set()
            for future in futures:
                future.result(timeout=10)
        finally:
            gate.set()
            dispatcher.shutdown()
            executor.shutdown()

    def test_shutdown_drains_queued_work(self):
        executor = ServingExecutor(workers=1)
        dispatcher = FairDispatcher(executor)
        futures = [dispatcher.submit("t", lambda i=i: i) for i in range(10)]
        dispatcher.shutdown(wait=True)
        assert [f.result(timeout=1) for f in futures] == list(range(10))
        from repro.errors import ServiceShutdownError

        with pytest.raises(ServiceShutdownError):
            dispatcher.submit("t", lambda: None)
        executor.shutdown()


class TestFairnessOverHTTP:
    def test_hot_tenant_cannot_starve_slow_tenant(self, server):
        """Saturating hot-tenant traffic must not blow up the latency of a
        tenant sending one request at a time."""
        stop = threading.Event()
        hot_latencies: list[float] = []
        hot_lock = threading.Lock()

        def hot_worker(worker):
            hot = Client(server, tenant="hot")
            i = 0
            while not stop.is_set():
                i += 1
                query = (f"SELECT ?s WHERE {{ ?s a <{OBSERVATION_CLASS}> }} "
                         f"LIMIT {20 + (worker * 97 + i) % 90}")
                start = time.monotonic()
                status, _, _ = hot.sparql(query)
                elapsed = time.monotonic() - start
                assert status in (200, 429, 503)
                with hot_lock:
                    hot_latencies.append(elapsed)

        threads = [threading.Thread(target=hot_worker, args=(w,), daemon=True)
                   for w in range(6)]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.1)  # let the hot lane saturate the pool
            slow = Client(server, tenant="slow")
            latencies = []
            for i in range(10):
                query = (f"SELECT ?s WHERE {{ ?s a <{OBSERVATION_CLASS}> }} "
                         f"LIMIT {110 + i}")
                start = time.monotonic()
                status, _, _ = slow.sparql(query)
                latencies.append(time.monotonic() - start)
                assert status == 200
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        latencies.sort()
        p95 = latencies[int(0.95 * (len(latencies) - 1))]
        # The fairness bound: one round-robin cycle (~2 lanes x one service
        # time), with CI headroom — not the hot tenant's queue depth.
        assert p95 < 2.0, f"slow tenant p95 {p95:.3f}s; starved"
        assert len(hot_latencies) >= 10  # the hot tenant really was hot


# -- graceful shutdown -------------------------------------------------------


class TestGracefulShutdown:
    def test_zero_inflight_responses_lost(self, mini_kg):
        """Every request accepted before stop() gets a complete, correct
        response; afterwards the port refuses."""
        injector = FaultInjector(
            mini_kg.endpoint(),
            FaultPlan.random(5, timeout_rate=0.0, transient_rate=0.0,
                             latency_rate=1.0, max_latency=0.05),
        )
        service = QueryService(injector, workers=2, cache_size=0)
        handle = serve_in_thread(service, own_service=True)
        n_requests = 8
        outcomes: list[tuple[int, bytes]] = []
        lock = threading.Lock()

        def worker(i):
            client = Client(handle, tenant=f"t{i % 3}")
            status, _, body = client.sparql(
                f"SELECT ?s WHERE {{ ?s a <{OBSERVATION_CLASS}> }} "
                f"LIMIT {5 + i}")
            with lock:
                outcomes.append((status, body))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_requests)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10
        while (handle.server._http.inflight < n_requests
               and time.monotonic() < deadline):
            time.sleep(0.002)
        assert handle.server._http.inflight == n_requests
        handle.close()  # graceful: drains all eight before returning
        for thread in threads:
            thread.join(timeout=30)

        assert len(outcomes) == n_requests
        for status, body in outcomes:
            assert status == 200, body
            document = json.loads(body)
            assert document["results"]["bindings"], "drained answer is empty"

        with pytest.raises(OSError):
            Client(handle).get("/healthz")

    def test_close_is_idempotent(self, mini_kg):
        handle = serve_in_thread(QueryService(mini_kg.endpoint(), workers=1),
                                 own_service=True)
        assert Client(handle).get("/healthz")[0] == 200
        handle.close()
        handle.close()


# -- statistics --------------------------------------------------------------


class TestStats:
    def test_stats_document_shape_and_counters(self, server, client):
        client.sparql(ASK_Q)
        status, stats = client.json("GET", "/stats")
        assert status == 200
        assert set(stats) >= {"serving", "endpoint", "executor", "cache",
                              "tenants", "sessions", "http"}
        assert stats["serving"]["requests"] >= 1
        assert stats["executor"]["workers"] == 4
        assert stats["executor"]["completed"] >= 1
        public = stats["tenants"][DEFAULT_TENANT]
        assert public["submitted"] >= 1
        assert public["completed"] >= 1
        assert stats["http"]["pending"] == 0

    def test_stats_wrong_method_is_405(self, client):
        assert client.request("POST", "/stats", body="{}")[0] == 405
