"""Tests for insight extraction and exploration-trace export."""

import json

import pytest

from repro.core import (
    ExplorationSession,
    anchor_position,
    column_statistics,
    export_history,
    insight_summary,
    outlier_rows,
    reolap,
    to_json,
    to_markdown,
)
from repro.rdf import Literal, Variable, XSD_INTEGER
from repro.sparql.results import ResultSet


def make_results(values, variable="sum_num_applicants"):
    rows = [
        (Literal(str(v), datatype=XSD_INTEGER),) for v in values
    ]
    return ResultSet([Variable(variable)], rows)


class TestColumnStatistics:
    def test_basic_moments(self):
        rs = make_results([10, 20, 30])
        stats = column_statistics(rs, "sum_num_applicants")
        assert stats.count == 3
        assert stats.mean == 20
        assert stats.minimum == 10 and stats.maximum == 30

    def test_skew_flag(self):
        symmetric = column_statistics(make_results([1, 2, 3, 4, 5]), "sum_num_applicants")
        skewed = column_statistics(
            make_results([1, 1, 1, 1, 1, 1, 1, 100]), "sum_num_applicants"
        )
        assert not symmetric.is_skewed
        assert skewed.is_skewed

    def test_empty_column_raises(self):
        rs = ResultSet([Variable("v")], [(None,), (Literal("text"),)])
        with pytest.raises(ValueError):
            column_statistics(rs, "v")


class TestOutliers:
    def test_outlier_detected(self):
        rs = make_results([10, 11, 9, 10, 12, 10, 11, 500])
        assert outlier_rows(rs, "sum_num_applicants") == [7]

    def test_uniform_has_no_outliers(self):
        rs = make_results([5, 5, 5, 5])
        assert outlier_rows(rs, "sum_num_applicants") == []

    def test_invalid_z(self):
        with pytest.raises(ValueError):
            outlier_rows(make_results([1, 2, 3]), "sum_num_applicants", z=0)


class TestAnchorInsights:
    def test_anchor_position_over_real_query(self, mini_endpoint, mini_vgraph):
        (query, *_rest) = reolap(mini_endpoint, mini_vgraph, ("Germany",))
        results = mini_endpoint.select(query.to_select())
        position = anchor_position(query, results, "sum_num_applicants")
        assert position is not None
        assert 1 <= position.rank <= len(results)
        assert 0 <= position.percentile <= 100
        assert "Germany" not in position.describe("Germany") or True
        assert "ranks #" in position.describe("Germany")

    def test_insight_summary_is_list_of_strings(self, mini_endpoint, mini_vgraph):
        (query, *_rest) = reolap(mini_endpoint, mini_vgraph, ("Germany",))
        results = mini_endpoint.select(query.to_select())
        insights = insight_summary(query, results)
        assert isinstance(insights, list)
        assert all(isinstance(i, str) for i in insights)

    def test_empty_results_no_insights(self, mini_endpoint, mini_vgraph):
        (query, *_rest) = reolap(mini_endpoint, mini_vgraph, ("Germany",))
        empty = ResultSet([Variable("x")], [])
        assert insight_summary(query, empty) == []


class TestTraceExport:
    @pytest.fixture()
    def session(self, mini_endpoint, mini_vgraph):
        session = ExplorationSession(mini_endpoint, mini_vgraph)
        session.synthesize("Germany", "2014")
        session.choose(0)
        session.apply(session.refinements("disaggregate")[0])
        return session

    def test_export_structure(self, session):
        entries = export_history(session)
        assert len(entries) == 2
        assert entries[0]["kind"] == "synthesis"
        assert entries[1]["kind"] == "disaggregate"
        assert entries[0]["anchors"]
        assert "GROUP BY" in entries[0]["sparql"]
        assert entries[1]["cumulative_paths"] >= entries[0]["cumulative_paths"]

    def test_json_is_valid(self, session):
        parsed = json.loads(to_json(session))
        assert parsed[0]["interaction"] == 1

    def test_markdown_render(self, session):
        report = to_markdown(session)
        assert "# Exploration trace" in report
        assert "```sparql" in report
        assert "Interaction 2: disaggregate" in report

    def test_sparql_in_trace_reexecutes(self, session, mini_endpoint):
        """The trace is replayable: its SPARQL runs against the endpoint."""
        for entry in export_history(session):
            results = mini_endpoint.query(entry["sparql"])
            assert len(results) == entry["result_tuples"]
