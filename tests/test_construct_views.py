"""Tests for CONSTRUCT queries and analytical-view materialization."""

import pytest

from repro.core import (
    AnalyticalView,
    DimensionMapping,
    MeasureMapping,
    RollupStep,
    VirtualSchemaGraph,
    reolap,
)
from repro.errors import SchemaError, SPARQLSyntaxError
from repro.qb import OBSERVATION_CLASS
from repro.rdf import IRI, Literal, RDF, RDFS, Triple, literal_from_python
from repro.sparql import ConstructQuery, evaluate_query, parse_query
from repro.store import Endpoint, Graph

EX = "http://example.org/music/"


def iri(name):
    return IRI(EX + name)


@pytest.fixture(scope="module")
def music_graph():
    """A general (non-statistical) KG about songs, per the paper's DBpedia view."""
    g = Graph()
    songs = [
        # (song, artist, genre, duration)
        ("song1", "beatles", "rock", 125),
        ("song2", "beatles", "rock", 180),
        ("song3", "beatles", "pop", 210),
        ("song4", "stones", "rock", 240),
        ("song5", "stones", "blues", 150),
        ("song6", "adele", "pop", 200),
        ("song7", "adele", "soul", 230),
        ("song8", "miles", "jazz", 480),
    ]
    genre_family = {"rock": "popular", "pop": "popular", "blues": "roots",
                    "soul": "roots", "jazz": "roots"}
    artist_country = {"beatles": "uk", "stones": "uk", "adele": "uk", "miles": "usa"}
    labels = {
        "beatles": "The Beatles", "stones": "The Rolling Stones",
        "adele": "Adele", "miles": "Miles Davis", "rock": "Rock", "pop": "Pop",
        "blues": "Blues", "soul": "Soul", "jazz": "Jazz",
        "popular": "Popular Music", "roots": "Roots Music",
        "uk": "United Kingdom", "usa": "United States",
    }
    for song, artist, genre, duration in songs:
        g.add(Triple(iri(song), RDF.type, iri("Song")))
        g.add(Triple(iri(song), iri("performedBy"), iri(artist)))
        g.add(Triple(iri(song), iri("hasGenre"), iri(genre)))
        g.add(Triple(iri(song), iri("durationSeconds"), literal_from_python(duration)))
        g.add(Triple(iri(song), RDFS.label, Literal(song.title())))
    for child, parent in genre_family.items():
        g.add(Triple(iri(child), iri("subGenreOf"), iri(parent)))
    for artist, country in artist_country.items():
        g.add(Triple(iri(artist), iri("fromCountry"), iri(country)))
    for name, label in labels.items():
        g.add(Triple(iri(name), RDFS.label, Literal(label)))
    return g


@pytest.fixture(scope="module")
def music_view():
    return AnalyticalView(
        name="songs",
        fact_class=iri("Song"),
        namespace="http://example.org/songview/",
        dimensions=(
            DimensionMapping(
                name="artist",
                source_path=(iri("performedBy"),),
                hierarchy=(RollupStep("from_country", (iri("fromCountry"),)),),
            ),
            DimensionMapping(
                name="genre",
                source_path=(iri("hasGenre"),),
                hierarchy=(RollupStep("in_family", (iri("subGenreOf"),)),),
            ),
        ),
        measures=(MeasureMapping("duration", (iri("durationSeconds"),)),),
    )


class TestConstruct:
    def test_basic_construct(self, music_graph):
        result = evaluate_query(
            music_graph,
            f"CONSTRUCT {{ ?a <{EX}playedGenre> ?g }} "
            f"WHERE {{ ?s <{EX}performedBy> ?a . ?s <{EX}hasGenre> ?g }}",
        )
        assert isinstance(result, Graph)
        assert Triple(iri("beatles"), iri("playedGenre"), iri("rock")) in result
        # Deduplicated: beatles played rock twice but one triple results.
        assert result.count(iri("beatles"), iri("playedGenre"), iri("rock")) == 1

    def test_unbound_template_triples_skipped(self, music_graph):
        result = evaluate_query(
            music_graph,
            f"CONSTRUCT {{ ?s <{EX}out> ?missing . ?s <{EX}kept> ?a }} "
            f"WHERE {{ ?s <{EX}performedBy> ?a . "
            f"OPTIONAL {{ ?s <{EX}nothing> ?missing }} }}",
        )
        assert result.count(None, iri("out"), None) == 0
        assert result.count(None, iri("kept"), None) > 0

    def test_literal_subject_skipped(self, music_graph):
        result = evaluate_query(
            music_graph,
            f"CONSTRUCT {{ ?d <{EX}backlink> ?s }} "
            f"WHERE {{ ?s <{EX}durationSeconds> ?d }}",
        )
        assert len(result) == 0

    def test_limit(self, music_graph):
        result = evaluate_query(
            music_graph,
            f"CONSTRUCT {{ ?s <{EX}copy> ?a }} "
            f"WHERE {{ ?s <{EX}performedBy> ?a }} LIMIT 3",
        )
        assert len(result) == 3

    def test_template_rejects_paths(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query(
                f"CONSTRUCT {{ ?s <{EX}a> / <{EX}b> ?o }} WHERE {{ ?s <{EX}p> ?o }}"
            )

    def test_roundtrip(self):
        q = parse_query(
            f"CONSTRUCT {{ ?s <{EX}p> ?o . }} WHERE {{ ?s <{EX}q> ?o . }} LIMIT 5"
        )
        assert isinstance(q, ConstructQuery)
        assert parse_query(q.to_sparql()).to_sparql() == q.to_sparql()

    def test_endpoint_dispatch(self, music_graph):
        endpoint = Endpoint(music_graph)
        result = endpoint.query(
            f"CONSTRUCT {{ ?s <{EX}p> ?a }} WHERE {{ ?s <{EX}performedBy> ?a }}"
        )
        assert isinstance(result, Graph)


class TestAnalyticalView:
    def test_materialize_produces_observations(self, music_graph, music_view):
        view_graph = music_view.materialize(Endpoint(music_graph))
        obs = list(view_graph.subjects(RDF.type, OBSERVATION_CLASS))
        assert len(obs) == 8

    def test_member_labels_copied(self, music_graph, music_view):
        view_graph = music_view.materialize(Endpoint(music_graph))
        assert Triple(iri("beatles"), RDFS.label, Literal("The Beatles")) in view_graph

    def test_hierarchy_copied(self, music_graph, music_view):
        view_graph = music_view.materialize(Endpoint(music_graph))
        rollup = music_view.rollup_predicate(music_view.dimensions[1].hierarchy[0])
        assert view_graph.value(iri("rock"), rollup, None) == iri("popular")

    def test_view_bootstraps_and_explores(self, music_graph, music_view):
        """The paper's full pipeline: general KG → view → Re2xOLAP."""
        view_graph = music_view.materialize(Endpoint(music_graph))
        endpoint = Endpoint(view_graph)
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        assert vgraph.n_levels == 4  # artist, country, genre, family
        queries = reolap(endpoint, vgraph, ("Rock",))
        assert queries
        results = endpoint.select(queries[0].to_select())
        assert len(results) > 0
        assert queries[0].anchor_row_indexes(results)

    def test_view_totals_match_source(self, music_graph, music_view):
        view_graph = music_view.materialize(Endpoint(music_graph))
        endpoint = Endpoint(view_graph)
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        (query, *_rest) = reolap(endpoint, vgraph, ("United Kingdom",))
        results = endpoint.select(query.to_select())
        uk_total = next(
            row[results.index_of("sum_duration")].to_python()
            for index, row in enumerate(results.rows)
            if index in query.anchor_row_indexes(results)
        )
        # UK artists: beatles (125+180+210) + stones (240+150) + adele (200+230)
        assert uk_total == 125 + 180 + 210 + 240 + 150 + 200 + 230

    def test_empty_view_raises(self, music_graph):
        view = AnalyticalView(
            name="broken",
            fact_class=iri("Nothing"),
            dimensions=(DimensionMapping("d", (iri("performedBy"),)),),
            measures=(MeasureMapping("m", (iri("durationSeconds"),)),),
        )
        with pytest.raises(SchemaError):
            view.materialize(Endpoint(music_graph))

    def test_validation(self):
        with pytest.raises(SchemaError):
            DimensionMapping("d", ())
        with pytest.raises(SchemaError):
            MeasureMapping("m", ())
        with pytest.raises(SchemaError):
            RollupStep("r", ())
        with pytest.raises(SchemaError):
            AnalyticalView("v", iri("Song"), (), (MeasureMapping("m", (iri("p"),)),))
