"""Tests for compiled id-space BGP execution, batching, and the catalog.

Covers the equivalence property (compiled plans return exactly what the
term-space interpreter returns), the compile-time short-circuits, the
cooperative deadline inside the compiled join loop, plan caching by graph
epoch, the incremental statistics catalog, and the batched (prefix-trie)
REOLAP candidate validation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SynthesisReport, VirtualSchemaGraph, reolap
from repro.datasets import generate_eurostat
from repro.errors import QueryEvaluationError, QueryTimeoutError
from repro.qb import OBSERVATION_CLASS
from repro.rdf import IRI, Triple, Variable, literal_from_python
from repro.serving import QueryCache
from repro.sparql import Evaluator, ask_bgp_batch, compile_bgp, order_batch, parse_query
from repro.sparql.ast import TriplePattern
from repro.store import Graph, PredicateStats

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


# -- equivalence property ---------------------------------------------------

subject_ids = st.integers(min_value=0, max_value=5)
predicate_ids = st.integers(min_value=0, max_value=3)
object_ids = st.integers(min_value=0, max_value=5)

graph_triples = st.lists(
    st.tuples(subject_ids, predicate_ids, object_ids), min_size=1, max_size=40
)

bgp_shapes = st.tuples(
    predicate_ids, predicate_ids,
    st.sampled_from(["chain", "fork", "loop", "anchored", "filtered", "self"]),
)


def build_graph(encoded):
    graph = Graph()
    for s, p, o in encoded:
        graph.add(Triple(iri(f"n{s}"), iri(f"p{p}"), iri(f"n{o}")))
    for s in {s for s, _p, _o in encoded}:
        graph.add(Triple(iri(f"n{s}"), iri("value"), literal_from_python(s * 10)))
    return graph


def bgp_query(p1, p2, shape):
    if shape == "chain":
        body = f"?a <{EX}p{p1}> ?b . ?b <{EX}p{p2}> ?c ."
    elif shape == "fork":
        body = f"?a <{EX}p{p1}> ?b . ?a <{EX}p{p2}> ?c ."
    elif shape == "loop":
        body = f"?a <{EX}p{p1}> ?b . ?b <{EX}p{p2}> ?a ."
    elif shape == "anchored":
        body = f"?a <{EX}p{p1}> <{EX}n2> . ?a <{EX}p{p2}> ?b . ?a <{EX}value> ?c ."
    elif shape == "self":
        # Repeated variable inside one pattern: must keep ?a = ?a equality.
        body = f"?a <{EX}p{p1}> ?a . ?a <{EX}p{p2}> ?b ."
    else:  # filtered
        body = (
            f"?a <{EX}p{p1}> ?b . ?a <{EX}value> ?c . "
            f"FILTER(?c >= 20) FILTER(?a != ?b)"
        )
    return f"SELECT * WHERE {{ {body} }}"


class TestCompiledEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(graph_triples, bgp_shapes)
    def test_compiled_matches_term_space(self, encoded, shape):
        graph = build_graph(encoded)
        query = parse_query(bgp_query(*shape))
        compiled = Evaluator(graph, compile=True).select(query)
        legacy = Evaluator(graph, compile=False).select(query)
        assert compiled == legacy

    @settings(max_examples=40, deadline=None)
    @given(graph_triples, bgp_shapes)
    def test_compiled_matches_without_optimizer(self, encoded, shape):
        graph = build_graph(encoded)
        query = parse_query(bgp_query(*shape))
        compiled = Evaluator(graph, optimize=False, compile=True).select(query)
        legacy = Evaluator(graph, optimize=False, compile=False).select(query)
        assert compiled == legacy

    def test_values_undef_rows(self):
        graph = build_graph([(0, 0, 1), (1, 0, 2)])
        query = parse_query(
            f"SELECT * WHERE {{ VALUES (?a) {{ (<{EX}n0>) (UNDEF) }} "
            f"?a <{EX}p0> ?b . }}"
        )
        compiled = Evaluator(graph, compile=True).select(query)
        legacy = Evaluator(graph, compile=False).select(query)
        assert compiled == legacy
        assert len(compiled) == 3  # bound row matches once, UNDEF row twice

    def test_ask_agreement(self):
        graph = build_graph([(0, 0, 1), (1, 1, 2)])
        hit = f"ASK {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}"
        miss = f"ASK {{ ?a <{EX}p1> ?b . ?b <{EX}p0> ?c . }}"
        for text in (hit, miss):
            query = parse_query(text)
            assert (
                Evaluator(graph, compile=True).ask(query)
                == Evaluator(graph, compile=False).ask(query)
            )


# -- unified operator pipeline (OPTIONAL / UNION / VALUES / paths / BIND /
#    EXISTS / MINUS / subqueries) -------------------------------------------

OPERATOR_SHAPES = [
    "optional", "optional-filter", "union", "union-partial", "values",
    "values-undef", "path-plus", "path-star", "path-seq", "path-alt",
    "path-inv", "path-anchored", "path-self", "mixed",
    # The four formerly-declining shapes, incl. error-semantics rows.
    "bind", "bind-arith", "bind-error", "bind-unbound",
    "exists", "not-exists", "exists-error",
    "minus", "minus-disjoint",
    "subquery", "subquery-agg", "mixed-retired",
]

operator_shapes = st.sampled_from(OPERATOR_SHAPES)


def operator_query(p1, p2, shape):
    P1, P2 = f"<{EX}p{p1}>", f"<{EX}p{p2}>"
    if shape == "optional":
        body = f"?a {P1} ?b . OPTIONAL {{ ?b {P2} ?c . }}"
    elif shape == "optional-filter":
        body = f"?a {P1} ?b . OPTIONAL {{ ?b {P2} ?c . FILTER(?c != ?a) }}"
    elif shape == "union":
        body = f"{{ ?a {P1} ?b . }} UNION {{ ?a {P2} ?b . }}"
    elif shape == "union-partial":
        # Branches bind disjoint variables: rows carry unbound registers.
        body = f"?a {P1} ?b . {{ ?b {P1} ?c . }} UNION {{ ?b {P2} ?d . }}"
    elif shape == "values":
        body = f"VALUES ?a {{ <{EX}n0> <{EX}n3> <{EX}unseen> }} ?a {P1} ?b ."
    elif shape == "values-undef":
        body = (
            f"VALUES (?a ?b) {{ (<{EX}n1> UNDEF) (UNDEF <{EX}n2>) }} "
            f"?a {P1} ?b ."
        )
    elif shape == "path-plus":
        body = f"?a {P1}+ ?b ."
    elif shape == "path-star":
        body = f"?a {P1}* ?b ."
    elif shape == "path-seq":
        body = f"?a {P1}/{P2} ?b ."
    elif shape == "path-alt":
        body = f"?a ({P1}|{P2}) ?b ."
    elif shape == "path-inv":
        body = f"?a ^{P1} ?b ."
    elif shape == "path-anchored":
        body = f"<{EX}n2> {P1}+ ?b . ?b {P2} ?c ."
    elif shape == "path-self":
        # Same variable at both path ends: only cycle members survive.
        body = f"?x {P1}+ ?x ."
    elif shape == "mixed":  # every classic operator in one body
        body = (
            f"?a {P1} ?b . OPTIONAL {{ ?b {P2} ?c . }} "
            f"{{ ?b {P1} ?d . }} UNION {{ ?b {P2} ?d . }} "
            f"FILTER(?a != ?b)"
        )
    elif shape == "bind":
        body = f"?a {P1} ?b . BIND(?b AS ?w)"
    elif shape == "bind-arith":
        # Computed numeric register, then a filter over the computed value.
        body = f"?a <{EX}value> ?v . BIND(?v * 3 AS ?w) FILTER(?w > 30)"
    elif shape == "bind-error":
        # IRI + 1 is a type error: ?w must stay unbound, rows survive.
        body = f"?a {P1} ?b . BIND(?b + 1 AS ?w)"
    elif shape == "bind-unbound":
        # ?c unbound on OPTIONAL misses: erroring BIND leaves ?w unbound.
        body = f"?a {P1} ?b . OPTIONAL {{ ?b {P2} ?c . }} BIND(?c AS ?w)"
    elif shape == "exists":
        body = f"?a {P1} ?b . FILTER EXISTS {{ ?b {P2} ?c . }}"
    elif shape == "not-exists":
        body = f"?a {P1} ?b . FILTER NOT EXISTS {{ ?b {P2} ?c . }}"
    elif shape == "exists-error":
        # The inner filter errors on IRIs (?c > 0): EXISTS never matches.
        body = f"?a {P1} ?b . FILTER EXISTS {{ ?b {P2} ?c . FILTER(?c > 0) }}"
    elif shape == "minus":
        body = f"?a {P1} ?b . MINUS {{ ?b {P2} ?c . }}"
    elif shape == "minus-disjoint":
        # No shared variables: MINUS removes nothing, per spec.
        body = f"?a {P1} ?b . MINUS {{ ?x {P2} ?y . }}"
    elif shape == "subquery":
        body = f"{{ SELECT ?b WHERE {{ ?x {P2} ?b . }} }} ?a {P1} ?b ."
    elif shape == "subquery-agg":
        # Aggregate results are runtime-minted ids (counts are terms the
        # store never stored) — they must decode at the boundary.
        body = (
            f"?a <{EX}value> ?v . "
            f"{{ SELECT ?a (COUNT(*) AS ?n) WHERE {{ ?a {P1} ?x . }} "
            f"GROUP BY ?a }}"
        )
    else:  # mixed-retired: all four formerly-declining shapes in one body
        body = (
            f"?a {P1} ?b . BIND(?b AS ?w) "
            f"FILTER NOT EXISTS {{ ?b {P2} ?c . }} "
            f"MINUS {{ ?w {P2} ?y . }} "
            f"{{ SELECT ?a WHERE {{ ?a <{EX}value> ?v . }} }}"
        )
    return f"SELECT * WHERE {{ {body} }}"


class TestOperatorEquivalence:
    """Hypothesis parity for the operator layer: every OPTIONAL / UNION /
    VALUES / property-path shape must answer exactly like the term-space
    interpreter, with and without the join-order optimizer."""

    @settings(max_examples=100, deadline=None)
    @given(graph_triples, predicate_ids, predicate_ids, operator_shapes)
    def test_compiled_matches_term_space(self, encoded, p1, p2, shape):
        graph = build_graph(encoded)
        query = parse_query(operator_query(p1, p2, shape))
        compiled = Evaluator(graph, compile=True).select(query)
        legacy = Evaluator(graph, compile=False).select(query)
        assert compiled == legacy

    @settings(max_examples=40, deadline=None)
    @given(graph_triples, predicate_ids, predicate_ids, operator_shapes)
    def test_compiled_matches_without_optimizer(self, encoded, p1, p2, shape):
        graph = build_graph(encoded)
        query = parse_query(operator_query(p1, p2, shape))
        compiled = Evaluator(graph, optimize=False, compile=True).select(query)
        legacy = Evaluator(graph, optimize=False, compile=False).select(query)
        assert compiled == legacy

    def test_shapes_actually_compile(self):
        """Every shape the parity property runs must take the compiled
        engine — otherwise the property compares legacy to legacy."""
        from repro.sparql.operators import compile_where

        graph = build_graph([(0, 0, 1), (1, 1, 2), (2, 0, 3)])
        for shape in OPERATOR_SHAPES:
            query = parse_query(operator_query(0, 1, shape))
            plan, reason = compile_where(graph, query.where)
            assert plan is not None, (shape, reason)

    def test_ask_agreement_on_operator_shapes(self):
        graph = build_graph([(0, 0, 1), (1, 1, 2)])
        for shape in ("optional", "union", "values", "path-plus", "mixed"):
            query = parse_query(operator_query(0, 1, shape).replace(
                "SELECT * WHERE", "ASK", 1))
            assert (
                Evaluator(graph, compile=True).ask(query)
                == Evaluator(graph, compile=False).ask(query)
            )


class TestBindRebindErrors:
    """BIND over an in-scope variable is a query error in every engine —
    raised even when the group has zero solutions, because the
    interpreter checks scope the moment the group is evaluated."""

    def _engines(self, graph):
        return (
            Evaluator(graph, compile=True, vectorize=True, batch_size=2),
            Evaluator(graph, compile=True, vectorize=False),
            Evaluator(graph, compile=False),
        )

    def test_static_rebind_raises(self):
        # ?b is bound by the group's own pattern: detected at lowering.
        graph = build_graph([(0, 0, 1)])
        query = parse_query(
            f"SELECT * WHERE {{ ?a <{EX}p0> ?b . BIND(<{EX}x> AS ?b) }}"
        )
        for evaluator in self._engines(graph):
            with pytest.raises(QueryEvaluationError):
                evaluator.select(query)

    def test_static_rebind_raises_with_zero_solutions(self):
        graph = build_graph([(0, 0, 1)])
        query = parse_query(
            f"SELECT * WHERE {{ ?a <{EX}p1> ?b . BIND(<{EX}x> AS ?b) }}"
        )
        for evaluator in self._engines(graph):
            with pytest.raises(QueryEvaluationError):
                evaluator.select(query)

    def test_row_dependent_rebind_raises(self):
        # ?b enters the OPTIONAL group bound by the incoming row — a
        # per-row property, substituted into the schedule via entry mask.
        graph = build_graph([(0, 0, 1), (0, 1, 2)])
        query = parse_query(
            f"SELECT * WHERE {{ ?a <{EX}p0> ?b . "
            f"OPTIONAL {{ ?a <{EX}p1> ?c . BIND(<{EX}x> AS ?b) }} }}"
        )
        for evaluator in self._engines(graph):
            with pytest.raises(QueryEvaluationError):
                evaluator.select(query)

    def test_row_dependent_rebind_raises_on_empty_inner_match(self):
        # The inner pattern matches nothing, but the rebind still raises:
        # tuple generators raise on first pull, and the batched fold
        # checks the schedule tail before its empty-batch short-circuit.
        graph = build_graph([(0, 0, 1)])
        query = parse_query(
            f"SELECT * WHERE {{ ?a <{EX}p0> ?b . "
            f"OPTIONAL {{ ?a <{EX}p1> ?c . BIND(<{EX}x> AS ?b) }} }}"
        )
        for evaluator in self._engines(graph):
            with pytest.raises(QueryEvaluationError):
                evaluator.select(query)

    def test_fresh_variable_is_not_a_rebind(self):
        graph = build_graph([(0, 0, 1)])
        query = parse_query(
            f"SELECT * WHERE {{ ?a <{EX}p0> ?b . BIND(<{EX}x> AS ?w) }}"
        )
        for evaluator in self._engines(graph):
            assert len(evaluator.select(query)) == 1


class TestPathClosureDeadline:
    """Satellite regression: a long ``broader+`` chain must hit the
    cooperative deadline *between frontier hops* in both engines."""

    def _chain_graph(self, length=5000):
        graph = Graph()
        broader = iri("broader")
        for i in range(length):
            graph.add(Triple(iri(f"c{i}"), broader, iri(f"c{i + 1}")))
        return graph

    @pytest.mark.parametrize("compile_flag", [True, False])
    def test_closure_observes_deadline(self, compile_flag):
        graph = self._chain_graph()
        query = parse_query(
            f"SELECT * WHERE {{ <{EX}c0> <{EX}broader>+ ?t . }}"
        )
        evaluator = Evaluator(graph, compile=compile_flag)
        with pytest.raises(QueryTimeoutError):
            evaluator.select(query, timeout=1e-6)
        # A sane budget still answers, and both engines agree on it.
        full = evaluator.select(query)
        assert len(full) == 5000


# -- repeated variables within one pattern ----------------------------------

class TestRepeatedVariablePatterns:
    """A pattern like ``?x <p> ?x`` carries an intra-pattern equality
    constraint.  It now compiles: the repeated occurrence binds a
    scratch register and the step's equality pair keeps only rows where
    both positions agree — no term-space fallback."""

    def _graph(self):
        # One genuine self-loop (n3 p0 n3) among ordinary edges; no
        # self-loop at all for p1.
        return build_graph([(0, 0, 1), (1, 0, 2), (3, 0, 3), (2, 1, 4)])

    def test_compiles_with_scratch_register(self):
        graph = self._graph()
        patterns = [TriplePattern(Variable("x"), iri("p0"), Variable("x"))]
        plan = compile_bgp(graph, patterns)
        assert plan is not None
        # One canonical slot for ?x, one scratch for the repetition.
        assert plan.num_slots == 1
        assert plan.num_registers == 2
        assert plan.step_eqs == (((0, 1),),)
        # A variable repeated across *different* patterns needs no eqs.
        chain = [
            TriplePattern(Variable("a"), iri("p0"), Variable("b")),
            TriplePattern(Variable("b"), iri("p1"), Variable("a")),
        ]
        chained = compile_bgp(graph, chain)
        assert chained is not None
        assert chained.step_eqs == ((), ())
        assert chained.num_registers == 2

    def test_select_keeps_equality(self):
        graph = self._graph()
        query = parse_query(f"SELECT ?x WHERE {{ ?x <{EX}p0> ?x . }}")
        compiled = Evaluator(graph, compile=True).select(query)
        legacy = Evaluator(graph, compile=False).select(query)
        assert compiled == legacy
        assert [row for row in compiled.rows] == [(iri("n3"),)]

    def test_ask_keeps_equality(self):
        graph = self._graph()
        has_loop = parse_query(f"ASK {{ ?z <{EX}p0> ?z . }}")
        no_loop = parse_query(f"ASK {{ ?z <{EX}p1> ?z . }}")
        for mode in (True, False):
            assert Evaluator(graph, compile=mode).ask(has_loop) is True
            assert Evaluator(graph, compile=mode).ask(no_loop) is False

    def test_batch_compiles_self_loops(self):
        graph = self._graph()
        bgps = [
            [TriplePattern(Variable("z"), iri("p1"), Variable("z"))],
            [TriplePattern(Variable("z"), iri("p0"), Variable("z"))],
            [TriplePattern(Variable("a"), iri("p0"), Variable("b"))],
        ]
        verdicts, stats = ask_bgp_batch(graph, bgps)
        # The batch trie decides every candidate itself now — no None
        # (fall-back-to-single-ASK) verdicts for repeated variables.
        assert verdicts == [False, True, True]
        assert stats.candidates == 3
        # The self-loop step and the plain two-variable step over p0 have
        # identical positional tuples but different equality pairs; they
        # must NOT share a trie node.
        assert stats.unique_steps == 3
        from repro.store import Endpoint

        endpoint = Endpoint(graph)
        texts = [
            f"ASK {{ ?z <{EX}p1> ?z . }}",
            f"ASK {{ ?z <{EX}p0> ?z . }}",
            f"ASK {{ ?a <{EX}p0> ?b . }}",
        ]
        assert endpoint.ask_batch(texts) == [False, True, True]


# -- compile-time behaviour -------------------------------------------------

class TestPlanCompilation:
    def test_unseen_constant_short_circuits(self):
        graph = build_graph([(0, 0, 1)])
        patterns = [TriplePattern(Variable("a"), iri("never-stored"), Variable("b"))]
        plan = compile_bgp(graph, patterns)
        assert plan is not None and plan.empty
        result = Evaluator(graph).select(
            parse_query(f"SELECT * WHERE {{ ?a <{EX}never-stored> ?b . }}")
        )
        assert len(result) == 0

    def test_property_path_not_compiled(self):
        graph = build_graph([(0, 0, 1)])
        query = parse_query(f"SELECT * WHERE {{ ?a <{EX}p0>+ ?b . }}")
        patterns = query.where.triple_patterns()
        assert compile_bgp(graph, patterns) is None
        # ...and the evaluator still answers through the interpreter.
        assert len(Evaluator(graph, compile=True).select(query)) == 1

    def test_plan_cache_reuse_and_epoch_invalidation(self):
        graph = build_graph([(0, 0, 1), (1, 0, 2)])
        cache = QueryCache()
        evaluator = Evaluator(graph, compile=True, plan_cache=cache.plans)
        query = parse_query(f"SELECT * WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p0> ?c . }}")
        evaluator.select(query)
        evaluator.select(query)
        assert cache.plans.stats.hits >= 1
        # A mutation bumps the epoch: the old plan's key is unreachable.
        misses_before = cache.plans.stats.misses
        graph.add(Triple(iri("n9"), iri("p0"), iri("n0")))
        evaluator.select(query)
        assert cache.plans.stats.misses > misses_before

    def test_shared_cache_keeps_graphs_apart(self):
        # Two graphs with *coinciding epochs* behind one shared cache:
        # plans (and results) bake in one graph's term ids, so without a
        # graph-identity key component, B would silently answer from A.
        from repro.store import Endpoint

        graph_a = Graph(triples=[Triple(iri("a-subj"), iri("p0"), iri("a-obj"))])
        graph_b = Graph(triples=[Triple(iri("b-subj"), iri("p0"), iri("b-obj"))])
        assert graph_a.epoch == graph_b.epoch
        assert graph_a.uid != graph_b.uid
        cache = QueryCache()
        text = f"SELECT * WHERE {{ ?s <{EX}p0> ?o . }}"
        first = Endpoint(graph_a, cache=cache).select(text)
        second = Endpoint(graph_b, cache=cache).select(text)

        def bindings(result):
            return [dict(zip(result.variables, row)) for row in result.rows]

        s, o = Variable("s"), Variable("o")
        assert bindings(first) == [{s: iri("a-subj"), o: iri("a-obj")}]
        assert bindings(second) == [{s: iri("b-subj"), o: iri("b-obj")}]

    def test_compiled_join_observes_deadline(self):
        graph = Graph()
        for i in range(60):
            for j in range(60):
                graph.add(Triple(iri(f"a{i}"), iri("edge"), iri(f"b{j}")))
        # Two disconnected patterns: a 3600^2-row cartesian product the
        # deadline must interrupt mid-join.
        query = parse_query(
            f"SELECT * WHERE {{ ?a <{EX}edge> ?b . ?c <{EX}edge> ?d . }}"
        )
        evaluator = Evaluator(graph, compile=True)
        with pytest.raises(QueryTimeoutError):
            evaluator.select(query, timeout=1e-4)


# -- statistics catalog -----------------------------------------------------

mutations = st.lists(
    st.tuples(st.booleans(), subject_ids, predicate_ids, object_ids),
    min_size=1, max_size=60,
)


class TestStatisticsCatalog:
    @settings(max_examples=60, deadline=None)
    @given(mutations)
    def test_counters_match_brute_force(self, ops):
        graph = Graph()
        for add, s, p, o in ops:
            triple = Triple(iri(f"n{s}"), iri(f"p{p}"), iri(f"n{o}"))
            if add:
                graph.add(triple)
            else:
                graph.remove(triple)
        triples = list(graph.triples())
        for p in {t.p for t in triples} | {iri("p0")}:
            expected = PredicateStats(
                triples=sum(1 for t in triples if t.p == p),
                distinct_subjects=len({t.s for t in triples if t.p == p}),
                distinct_objects=len({t.o for t in triples if t.p == p}),
            )
            assert graph.predicate_stats(p) == expected
            assert graph.predicate_cardinality(p) == expected.triples
            assert graph.count(None, p, None) == expected.triples
        for s in {t.s for t in triples}:
            assert graph.count(s, None, None) == sum(1 for t in triples if t.s == s)
        for o in {t.o for t in triples}:
            assert graph.count(None, None, o) == sum(1 for t in triples if t.o == o)

    def test_fanouts(self):
        graph = build_graph([(0, 0, 1), (0, 0, 2), (1, 0, 1)])
        stats = graph.predicate_stats(iri("p0"))
        assert stats == PredicateStats(3, 2, 2)
        assert stats.subject_fanout == pytest.approx(1.5)
        assert stats.object_fanout == pytest.approx(1.5)


# -- batched evaluation -----------------------------------------------------

class TestBatchedAsk:
    def _graph(self):
        return build_graph([(0, 0, 1), (1, 1, 2), (2, 2, 3), (0, 1, 3)])

    def test_shared_prefix_probed_once(self):
        graph = self._graph()
        shared = TriplePattern(Variable("a"), iri("p0"), Variable("b"))
        bgps = [
            [shared, TriplePattern(Variable("b"), iri("p1"), Variable("c"))],
            [shared, TriplePattern(Variable("b"), iri("p2"), Variable("c"))],
            [shared, TriplePattern(Variable("a"), iri("p1"), Variable("d"))],
        ]
        verdicts, stats = ask_bgp_batch(graph, bgps)
        assert verdicts == [True, False, True]
        assert stats.candidates == 3
        assert stats.total_steps == 6
        assert stats.unique_steps == 4  # shared step stored once
        assert stats.steps_shared == 2

    def test_verdicts_match_individual_asks(self):
        graph = self._graph()
        texts = [
            f"ASK {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}",
            f"ASK {{ ?a <{EX}p0> ?b . ?b <{EX}p2> ?c . }}",
            f"ASK {{ ?a <{EX}p2> ?b . ?b <{EX}p0> ?c . }}",
            f"ASK {{ ?a <{EX}unseen> ?b . }}",
        ]
        from repro.store import Endpoint

        endpoint = Endpoint(graph)
        batched = endpoint.ask_batch(texts)
        assert batched == [endpoint.ask(text) for text in texts]

    def test_endpoint_counters_observe_sharing(self):
        from repro.store import Endpoint

        endpoint = Endpoint(self._graph(), cache=QueryCache())
        texts = [
            f"ASK {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}",
            f"ASK {{ ?a <{EX}p0> ?b . ?b <{EX}p2> ?c . }}",
        ]
        endpoint.ask_batch(texts)
        assert endpoint.stats.batch_asks == 1
        assert endpoint.stats.batch_shared_steps >= 1
        assert endpoint.stats.ask_queries == 2
        # A repeat batch is answered from the result cache.
        hits_before = endpoint.stats.cache_hits
        endpoint.ask_batch(texts)
        assert endpoint.stats.cache_hits == hits_before + 2
        assert endpoint.stats.batch_asks == 1  # nothing left to batch

    def test_batch_timeout_degrades_to_individual_asks(self, monkeypatch):
        # The trie walk shares one deadline across all candidates, so a
        # batch-level timeout must not abort validation: each undecided
        # candidate is re-asked with its own budget.
        import repro.sparql.batch as batch_module
        from repro.store import Endpoint

        def _always_times_out(graph, bgps, timeout=None):
            raise QueryTimeoutError("batch deadline exhausted")

        monkeypatch.setattr(batch_module, "ask_bgp_batch", _always_times_out)
        endpoint = Endpoint(self._graph())
        texts = [
            f"ASK {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}",
            f"ASK {{ ?a <{EX}p0> ?b . ?b <{EX}p2> ?c . }}",
        ]
        assert endpoint.ask_batch(texts, timeout=5.0) == [True, False]
        assert endpoint.stats.timeouts == 1  # the batch attempt is recorded
        assert endpoint.stats.ask_queries == 2  # answered individually

    def test_order_batch_builds_common_prefix(self):
        graph = self._graph()
        shared_a = TriplePattern(Variable("a"), iri("p0"), Variable("b"))
        shared_b = TriplePattern(Variable("b"), iri("p1"), Variable("c"))
        own_1 = TriplePattern(Variable("c"), iri("p2"), Variable("d"))
        own_2 = TriplePattern(Variable("a"), iri("p2"), Variable("e"))
        ordered = order_batch(graph, [[own_1, shared_a, shared_b],
                                      [shared_b, own_2, shared_a]])
        prefix_0 = ordered[0][:2]
        prefix_1 = ordered[1][:2]
        assert prefix_0 == prefix_1
        assert set(prefix_0) == {shared_a, shared_b}


class TestReolapBatchValidation:
    @pytest.fixture(scope="class")
    def setup(self):
        kg = generate_eurostat(n_observations=400, scale=0.3, seed=11)
        endpoint = kg.endpoint()
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        return kg, endpoint, vgraph

    def test_multi_candidate_validation_is_batched(self, setup):
        _kg, endpoint, vgraph = setup
        # "Asia" is ambiguous in this synthetic cube: it names members at
        # two levels, so REOLAP emits two candidates to validate.
        unvalidated = reolap(endpoint, vgraph, ("Asia",), validate=False)
        assert len(unvalidated) > 1
        endpoint.stats.reset()
        report = SynthesisReport()
        validated = reolap(endpoint, vgraph, ("Asia",), validate=True, report=report)
        assert endpoint.stats.batch_asks == 1
        assert endpoint.stats.batch_shared_steps >= 1
        assert validated  # the cube contains observations for the members
        assert len(validated) + report.candidates_empty == len(unvalidated)

    def test_batched_validation_equals_sequential(self, setup):
        _kg, endpoint, vgraph = setup
        batched = reolap(endpoint, vgraph, ("Asia",), validate=True)
        sequential_endpoint = _kg_endpoint_no_compile(_kg)
        sequential = reolap(sequential_endpoint, vgraph, ("Asia",), validate=True)
        assert [q.to_select().to_sparql() for q in batched] == [
            q.to_select().to_sparql() for q in sequential
        ]


def _kg_endpoint_no_compile(kg):
    return kg.endpoint(compile=False)
