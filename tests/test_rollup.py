"""Tests for the Roll-up refinement operator."""

import pytest

from repro.core import Rollup, reolap
from repro.rdf import IRI

MINI = "http://example.org/mini/"


def prop(name):
    return IRI(MINI + "prop/" + name)


@pytest.fixture()
def country_query(mini_endpoint, mini_vgraph):
    queries = reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"))
    by_dims = {
        frozenset(d.level.dimension_predicate for d in q.dimensions): q for q in queries
    }
    return by_dims[frozenset({prop("country_of_destination"), prop("ref_period")})]


class TestRollup:
    def test_proposes_continent_rollup(self, mini_endpoint, mini_vgraph, country_query):
        proposals = Rollup(mini_vgraph, mini_endpoint).propose(country_query)
        labels = {p.explanation for p in proposals}
        assert any("In Continent" in label for label in labels)

    def test_dimension_count_unchanged(self, mini_endpoint, mini_vgraph, country_query):
        for proposal in Rollup(mini_vgraph, mini_endpoint).propose(country_query):
            assert len(proposal.query.dimensions) == len(country_query.dimensions)

    def test_anchor_lifted_to_ancestor(self, mini_endpoint, mini_vgraph, country_query, mini_kg):
        (proposal,) = Rollup(mini_vgraph, mini_endpoint).propose(country_query)
        results = mini_endpoint.select(proposal.query.to_select())
        # Germany's continent (Europe) must anchor the rolled-up results.
        assert proposal.query.anchor_row_indexes(results)
        continent_var = next(
            d.variable for d in proposal.query.dimensions if d.level.depth == 2
        )
        europe = {
            m.iri for m in mini_kg.members_of("origin", "continent") if m.label == "Europe"
        }
        anchored = {
            a.member for a in proposal.query.anchors if a.variable == continent_var
        }
        assert anchored == europe

    def test_rollup_shrinks_or_keeps_result_size(self, mini_endpoint, mini_vgraph, country_query):
        base_results = mini_endpoint.select(country_query.to_select())
        for proposal in Rollup(mini_vgraph, mini_endpoint).propose(country_query):
            rolled = mini_endpoint.select(proposal.query.to_select())
            assert len(rolled) <= len(base_results)

    def test_no_rollup_at_top_level(self, mini_endpoint, mini_vgraph):
        # A query already grouped at continent has nowhere to roll up to.
        queries = reolap(mini_endpoint, mini_vgraph, ("Europe",))
        for query in queries:
            assert Rollup(mini_vgraph, mini_endpoint).propose(query) == []

    def test_roundtrip_with_disaggregate(self, mini_endpoint, mini_vgraph, country_query):
        """Rolling up then drilling back down restores the original view."""
        from repro.core import Disaggregate

        (rolled,) = Rollup(mini_vgraph, mini_endpoint).propose(country_query)
        drills = Disaggregate(mini_vgraph).propose(rolled.query)
        restored_paths = {
            p.query.dimensions[-1].level.path for p in drills
        }
        assert (prop("country_of_destination"),) in restored_paths

    def test_m_to_n_rollup_branches_groups(self):
        """With two parents per member, both ancestors anchor the rollup."""
        from repro.core import VirtualSchemaGraph
        from repro.qb import (
            CubeBuilder, CubeSchema, DimensionSpec, HierarchySpec,
            LevelSpec, MeasureSpec, OBSERVATION_CLASS,
        )

        schema = CubeSchema(
            "mn",
            (
                DimensionSpec(
                    "genre",
                    (HierarchySpec("g", (
                        LevelSpec("song_genre", 6),
                        LevelSpec("super", 4, parents_per_member=2),
                    )),),
                ),
            ),
            (MeasureSpec("m"),),
            namespace="http://example.org/mn2/",
        )
        kg = CubeBuilder(schema, seed=1).build(60)
        endpoint = kg.endpoint()
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        queries = reolap(endpoint, vgraph, (kg.members_of("genre", "song_genre")[0].label,))
        base = next(q for q in queries if q.dimensions[0].level.depth == 1)
        proposals = Rollup(vgraph, endpoint).propose(base)
        assert proposals
        rolled = proposals[0].query
        groups = {a.group for a in rolled.anchors}
        assert len(groups) == 2  # one branch per parent
        results = endpoint.select(rolled.to_select())
        assert rolled.anchor_row_indexes(results)
