"""Snapshot persistence tests: round-trip fidelity, laziness, sharing.

Covers the contract of :mod:`repro.store.snapshot`:

* save → load round-trips the exact triple set and the exact terms
  (tagged binary codec — a plain literal and an explicit xsd:string
  literal stay distinct);
* loading is lazy: opening a snapshot materializes no :class:`Node`
  objects, and touching one binding decodes only the terms it needs;
* the loaded graph keeps the writer's epoch and the full statistics
  catalog, and stays writable (delta overlay) unless opened as a
  read-only :class:`SnapshotView`;
* malformed files fail with :class:`SnapshotError`, not mystery unpacks;
* one snapshot file can back several servers at once, read-only.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse

import pytest

from repro.errors import ReadOnlySnapshotError, SnapshotError
from repro.qb import OBSERVATION_CLASS
from repro.rdf import IRI, Literal, Triple
from repro.rdf.terms import BNode
from repro.server import serve_in_thread
from repro.serving import QueryService
from repro.store import Graph, SnapshotTermDictionary, SnapshotView
from repro.store.snapshot import MAGIC, decode_term, encode_term

XSD_STRING = IRI("http://www.w3.org/2001/XMLSchema#string")


def tricky_graph() -> Graph:
    """A small graph exercising every term kind the codec must keep apart."""
    g = Graph(name=IRI("urn:tricky"))
    s = IRI("urn:s")
    g.add(Triple(s, IRI("urn:p"), Literal("x")))
    g.add(Triple(s, IRI("urn:p"), Literal("x", datatype=XSD_STRING)))
    g.add(Triple(s, IRI("urn:p"), Literal("x", language="en")))
    g.add(Triple(s, IRI("urn:p"), Literal("x", language="en-GB")))
    g.add(Triple(s, IRI("urn:num"), Literal("3", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer"))))
    g.add(Triple(BNode("b0"), IRI("urn:p"), Literal("ünïcode ☃")))
    g.add(Triple(s, IRI("urn:empty"), Literal("")))
    return g


class TestTermCodec:
    def test_round_trip_every_kind(self):
        terms = [
            IRI("urn:x"),
            BNode("b1"),
            Literal("plain"),
            Literal(""),
            Literal("plain", language="en"),
            Literal("plain", datatype=XSD_STRING),
            Literal("snow ☃", language="de-AT"),
        ]
        for term in terms:
            assert decode_term(encode_term(term)) == term

    def test_plain_and_xsd_string_encode_differently(self):
        assert encode_term(Literal("x")) != encode_term(Literal("x", datatype=XSD_STRING))

    def test_unknown_tag_raises(self):
        with pytest.raises(SnapshotError):
            decode_term(b"Zoops")


class TestRoundTrip:
    def test_exact_triple_set(self, tmp_path):
        g = tricky_graph()
        path = str(tmp_path / "g.snap")
        size = g.save_snapshot(path)
        assert size > 0
        loaded = Graph.load_snapshot(path)
        assert len(loaded) == len(g)
        assert sorted(loaded.triples()) == sorted(g.triples())

    def test_epoch_and_stats_survive(self, tmp_path):
        g = tricky_graph()
        path = str(tmp_path / "g.snap")
        g.save_snapshot(path)
        loaded = Graph.load_snapshot(path)
        assert loaded.epoch == g.epoch
        assert loaded.layout == "columnar"
        for p in g.predicates():
            assert loaded.predicate_stats(p) == g.predicate_stats(p)
        assert sorted(loaded.predicates()) == sorted(g.predicates())

    def test_uid_is_fresh(self, tmp_path):
        g = tricky_graph()
        path = str(tmp_path / "g.snap")
        g.save_snapshot(path)
        a = Graph.load_snapshot(path)
        b = Graph.load_snapshot(path)
        assert len({g.uid, a.uid, b.uid}) == 3

    def test_save_from_dict_layout(self, tmp_path):
        source = tricky_graph()
        g = Graph(layout="dict", triples=source.triples())
        path = str(tmp_path / "d.snap")
        g.save_snapshot(path)
        loaded = Graph.load_snapshot(path)
        assert sorted(loaded.triples()) == sorted(g.triples())
        for p in g.predicates():
            assert loaded.predicate_stats(p) == g.predicate_stats(p)

    def test_save_with_pending_delta_and_tombstones(self, tmp_path):
        g = Graph(flush_threshold=4)
        triples = [
            Triple(IRI(f"urn:s{i}"), IRI(f"urn:p{i % 3}"), Literal(str(i)))
            for i in range(20)
        ]
        g.add_all(triples)
        g.remove(triples[3])
        g.remove(triples[17])
        extra = Triple(IRI("urn:late"), IRI("urn:p0"), Literal("late"))
        g.add(extra)
        path = str(tmp_path / "delta.snap")
        g.save_snapshot(path)
        loaded = Graph.load_snapshot(path)
        expected = sorted(t for t in triples + [extra] if t not in (triples[3], triples[17]))
        assert sorted(loaded.triples()) == expected

    def test_empty_graph(self, tmp_path):
        path = str(tmp_path / "empty.snap")
        Graph().save_snapshot(path)
        loaded = Graph.load_snapshot(path)
        assert len(loaded) == 0
        assert list(loaded.triples()) == []
        loaded.add(Triple(IRI("urn:s"), IRI("urn:p"), Literal("v")))
        assert len(loaded) == 1

    def test_loaded_graph_is_writable(self, tmp_path):
        g = tricky_graph()
        path = str(tmp_path / "g.snap")
        g.save_snapshot(path)
        loaded = Graph.load_snapshot(path)
        epoch = loaded.epoch
        new = Triple(IRI("urn:new"), IRI("urn:p"), Literal("fresh term"))
        assert loaded.add(new)
        assert new in loaded
        assert loaded.epoch == epoch + 1
        assert loaded.count(None, IRI("urn:p"), None) == g.count(None, IRI("urn:p"), None) + 1
        # Removing a run-resident triple goes through the tombstone path.
        victim = next(g.triples())
        assert loaded.remove(victim)
        assert victim not in loaded
        # And the result can be re-snapshotted.
        path2 = str(tmp_path / "g2.snap")
        loaded.save_snapshot(path2)
        again = Graph.load_snapshot(path2)
        assert sorted(again.triples()) == sorted(loaded.triples())


class TestLazyDecode:
    def test_load_materializes_no_terms(self, tmp_path):
        """Bootstrap is O(file open): no Node objects built at load time."""
        g = tricky_graph()
        path = str(tmp_path / "g.snap")
        g.save_snapshot(path)
        loaded = Graph.load_snapshot(path)
        terms = loaded.term_dictionary
        assert isinstance(terms, SnapshotTermDictionary)
        assert terms.materialized_terms == 0
        assert len(loaded) == len(g)  # counting touches no terms
        assert terms.materialized_terms == 0

    def test_targeted_query_decodes_only_what_it_touches(self, tmp_path):
        g = Graph()
        for i in range(500):
            g.add(Triple(IRI(f"urn:s{i}"), IRI("urn:p"), Literal(str(i))))
        path = str(tmp_path / "big.snap")
        g.save_snapshot(path)
        loaded = Graph.load_snapshot(path)
        terms = loaded.term_dictionary
        probe = Triple(IRI("urn:s42"), IRI("urn:p"), Literal("42"))
        assert probe in loaded
        # A fully-bound probe needs lookups (id from bytes), not decodes.
        assert terms.materialized_terms < 5
        got = list(loaded.triples(IRI("urn:s123"), IRI("urn:p"), None))
        assert got == [Triple(IRI("urn:s123"), IRI("urn:p"), Literal("123"))]
        assert terms.materialized_terms < 10, "full-scan decode leaked in"

    def test_decode_is_memoized(self, tmp_path):
        g = tricky_graph()
        path = str(tmp_path / "g.snap")
        g.save_snapshot(path)
        terms = Graph.load_snapshot(path).term_dictionary
        first = terms.decode(0)
        assert terms.decode(0) is first


class TestSnapshotView:
    def test_rejects_all_mutation(self, tmp_path):
        g = tricky_graph()
        path = str(tmp_path / "g.snap")
        g.save_snapshot(path)
        view = Graph.load_snapshot(path, readonly=True)
        assert isinstance(view, SnapshotView)
        t = Triple(IRI("urn:s"), IRI("urn:p"), Literal("nope"))
        with pytest.raises(ReadOnlySnapshotError):
            view.add(t)
        with pytest.raises(ReadOnlySnapshotError):
            view.add_all([t])
        with pytest.raises(ReadOnlySnapshotError):
            view.remove(next(g.triples()))
        assert view.epoch == g.epoch
        assert sorted(view.triples()) == sorted(g.triples())

    def test_open_classmethod(self, tmp_path):
        g = tricky_graph()
        path = str(tmp_path / "g.snap")
        g.save_snapshot(path)
        view = SnapshotView.open(path, name=IRI("urn:view"))
        assert view.name == IRI("urn:view")
        assert len(view) == len(g)


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            Graph.load_snapshot(str(tmp_path / "nope.snap"))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.snap"
        path.write_bytes(b"NOTASNAP\x00\x00" + b"\x00" * 400)
        with pytest.raises(SnapshotError, match="magic"):
            Graph.load_snapshot(str(path))

    def test_bad_version(self, tmp_path):
        g = tricky_graph()
        path = tmp_path / "v.snap"
        g.save_snapshot(str(path))
        data = bytearray(path.read_bytes())
        data[10:12] = (99).to_bytes(2, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="version"):
            Graph.load_snapshot(str(path))

    def test_truncated_file(self, tmp_path):
        g = tricky_graph()
        path = tmp_path / "t.snap"
        g.save_snapshot(str(path))
        path.write_bytes(path.read_bytes()[:64])
        with pytest.raises(SnapshotError):
            Graph.load_snapshot(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "zero.snap"
        path.write_bytes(b"")
        with pytest.raises(SnapshotError):
            Graph.load_snapshot(str(path))


# -- shared snapshot serving -------------------------------------------------


def _http_select(handle, query: str) -> dict:
    params = urllib.parse.urlencode({"query": query})
    conn = http.client.HTTPConnection(handle.server.host, handle.server.port, timeout=30)
    try:
        conn.request("GET", f"/sparql?{params}")
        response = conn.getresponse()
        body = response.read()
        assert response.status == 200, body
        return json.loads(body)
    finally:
        conn.close()


class TestSharedSnapshotServing:
    def test_two_servers_share_one_snapshot_file(self, mini_kg, tmp_path):
        """Two server instances over one read-only snapshot answer
        identically to the in-process graph — no copies, no interference."""
        path = str(tmp_path / "mini.snap")
        mini_kg.graph.save_snapshot(path)

        from repro.store import Endpoint

        views = [Graph.load_snapshot(path, readonly=True) for _ in range(2)]
        assert all(isinstance(v, SnapshotView) for v in views)
        handles = [
            serve_in_thread(QueryService(Endpoint(view), workers=2), own_service=True)
            for view in views
        ]
        try:
            query = (
                f"SELECT ?s WHERE {{ ?s a <{OBSERVATION_CLASS}> }} "
                "ORDER BY ?s LIMIT 25"
            )
            documents = [_http_select(h, query) for h in handles]
            assert documents[0] == documents[1]
            reference = Endpoint(mini_kg.graph).select(query)
            assert len(documents[0]["results"]["bindings"]) == min(25, len(reference))
        finally:
            for handle in handles:
                handle.close()
        # The file stayed a pristine read-only source throughout.
        reread = Graph.load_snapshot(path)
        assert len(reread) == len(mini_kg.graph)
