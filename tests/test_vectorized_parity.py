"""Property parity: batched execution ≡ tuple operators ≡ term-space.

The vectorized executor (repro.sparql.vectorized) re-implements every
operator's semantics over integer-array batches, with per-row fallback
for the shapes it does not vectorize.  These properties pin the whole
surface to the two reference engines over random cubes:

* random store states: fully flushed runs (morsel driver engages),
  delta overlays on top of flushed runs (driver declines, per-row
  fallback engages), and never-flushed buffers;
* adversarial batch geometry: 1-row batches exercise every
  batch-boundary path, and parallel=2 exercises the morsel merge;
* the operator zoo: OPTIONAL (with inner filters), UNION, VALUES,
  property paths, repeated variables, numeric FILTERs both ways,
  grouped aggregates, and the formerly-declining shapes — BIND
  (including error rows), EXISTS/NOT EXISTS, MINUS, and nested
  subqueries (plain and aggregate).

Row order is part of the contract *within* the compiled engine (LIMIT
without ORDER BY slices positionally), so batched and tuple results
compare exactly.  The term-space interpreter may emit another
implementation-defined order for the same solutions (it walks property
paths breadth-first from a different frontier, for one), so the
cross-engine comparison is a multiset.

The same file doubles as the stdlib-backend gate: CI re-runs it with
``REPRO_NO_NUMPY=1``, which flips repro.sparql.vectorized to its
pure-Python array paths at import time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Triple, literal_from_python
from repro.sparql import Evaluator, parse_query, vectorized
from repro.store import Graph

EX = "http://example.org/"

# Tiny universes so random BGPs actually join.
subject_ids = st.integers(min_value=0, max_value=5)
predicate_ids = st.integers(min_value=0, max_value=2)
object_ids = st.integers(min_value=0, max_value=5)

graph_triples = st.lists(
    st.tuples(subject_ids, predicate_ids, object_ids), min_size=1, max_size=30
)
#: Triples added *after* the flush — a live delta overlay over pure runs.
overlay_triples = st.lists(
    st.tuples(subject_ids, predicate_ids, object_ids), max_size=6
)
#: "flushed" → pure runs (morsel driver engages); "overlay" → runs plus a
#: delta buffer (driver declines); "buffered" → nothing flushed at all.
store_states = st.sampled_from(["flushed", "overlay", "buffered"])
batch_sizes = st.sampled_from([1, 3, 64])
parallelism = st.sampled_from([1, 2])

QUERIES = [
    # join + numeric filters, both orientations
    f"SELECT ?a ?b ?v WHERE {{ ?a <{EX}p0> ?b . ?a <{EX}value> ?v . "
    f"FILTER(?v >= 20) }}",
    f"SELECT ?a ?v WHERE {{ ?a <{EX}value> ?v . FILTER(30 > ?v) }}",
    # OPTIONAL, plain and with an inner filter
    f"SELECT ?a ?b ?v WHERE {{ ?a <{EX}p0> ?b . "
    f"OPTIONAL {{ ?b <{EX}p1> ?v }} }}",
    f"SELECT ?a ?b ?v WHERE {{ ?a <{EX}p0> ?b . "
    f"OPTIONAL {{ ?a <{EX}value> ?v . FILTER(?v < 30) }} }}",
    # UNION of two branches, joined back against the measure
    f"SELECT ?a ?v WHERE {{ {{ ?a <{EX}p0> ?x . }} UNION "
    f"{{ ?a <{EX}p1> ?x . }} ?a <{EX}value> ?v }}",
    # VALUES with an UNDEF row
    f"SELECT ?a ?b WHERE {{ VALUES ?b {{ <{EX}n0> <{EX}n2> UNDEF }} "
    f"?a <{EX}p0> ?b }}",
    # property path closure (falls back per-row by design)
    f"SELECT ?a ?b WHERE {{ ?a <{EX}p0>+ ?b }}",
    # repeated variable → register-equality filter
    f"SELECT ?a WHERE {{ ?a <{EX}p0> ?a }}",
    # bound-subject probe and contains shape
    f"SELECT ?b WHERE {{ <{EX}n1> <{EX}p0> ?b }}",
    f"SELECT ?a WHERE {{ ?a <{EX}p0> <{EX}n2> . ?a <{EX}p1> <{EX}n3> }}",
    # DISTINCT + LIMIT (positional slice must survive batching)
    f"SELECT DISTINCT ?a WHERE {{ ?a <{EX}p0> ?b }} LIMIT 3",
    # BIND: computed register (distinct-table kernel), then filter on it
    f"SELECT ?a ?w WHERE {{ ?a <{EX}value> ?v . BIND(?v * 2 AS ?w) "
    f"FILTER(?w >= 40) }}",
    # BIND type error: IRI + 1 errors per-row, ?w stays unbound
    f"SELECT ?a ?w WHERE {{ ?a <{EX}p0> ?b . BIND(?b + 1 AS ?w) }}",
    # BIND over an OPTIONAL register: unbound rows error, bound rows bind
    f"SELECT ?a ?w WHERE {{ ?a <{EX}p0> ?b . "
    f"OPTIONAL {{ ?b <{EX}value> ?v }} BIND(?v AS ?w) }}",
    # EXISTS / NOT EXISTS correlated semi/anti joins
    f"SELECT ?a WHERE {{ ?a <{EX}p0> ?b . "
    f"FILTER EXISTS {{ ?a <{EX}p1> ?c }} }}",
    f"SELECT ?a ?b WHERE {{ ?a <{EX}p0> ?b . "
    f"FILTER NOT EXISTS {{ ?b <{EX}p1> ?c }} }}",
    # EXISTS whose inner filter errors on IRIs: never matches
    f"SELECT ?a WHERE {{ ?a <{EX}p0> ?b . "
    f"FILTER EXISTS {{ ?b <{EX}p1> ?c . FILTER(?c > 0) }} }}",
    # MINUS on a shared variable, and MINUS with nothing shared
    f"SELECT ?a ?b WHERE {{ ?a <{EX}p0> ?b . MINUS {{ ?a <{EX}p1> ?c }} }}",
    f"SELECT ?a ?b WHERE {{ ?a <{EX}p0> ?b . MINUS {{ ?x <{EX}p1> ?y }} }}",
    # nested subqueries: plain join and aggregate (runtime-minted counts)
    f"SELECT ?a ?b WHERE {{ {{ SELECT ?a WHERE {{ ?a <{EX}p1> ?y }} }} "
    f"?a <{EX}p0> ?b }}",
    f"SELECT ?a ?n WHERE {{ {{ SELECT ?a (COUNT(*) AS ?n) WHERE "
    f"{{ ?a <{EX}p0> ?x }} GROUP BY ?a }} ?a <{EX}value> ?v }}",
    # one-column non-numeric FILTER (register-program distinct table)
    f'SELECT ?a WHERE {{ ?a <{EX}p0> ?b . FILTER regex(STR(?b), "n[024]") }}',
]

AGG_QUERIES = [
    f"SELECT ?b (COUNT(*) AS ?n) (SUM(?v) AS ?s) WHERE "
    f"{{ ?a <{EX}p0> ?b . ?a <{EX}value> ?v }} GROUP BY ?b",
    f"SELECT ?b (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE "
    f"{{ ?a <{EX}p0> ?b . ?a <{EX}value> ?v }} GROUP BY ?b",
    f"SELECT (COUNT(DISTINCT ?b) AS ?n) (AVG(?v) AS ?m) WHERE "
    f"{{ ?a <{EX}p0> ?b . ?a <{EX}value> ?v }}",
    f"SELECT ?b (GROUP_CONCAT(?a) AS ?members) WHERE "
    f"{{ ?a <{EX}p0> ?b }} GROUP BY ?b",
]


def build_graph(encoded, overlay, state):
    graph = Graph()
    for s, p, o in encoded:
        graph.add(Triple(IRI(f"{EX}n{s}"), IRI(f"{EX}p{p}"), IRI(f"{EX}n{o}")))
    for s in {s for s, _p, _o in encoded}:
        graph.add(
            Triple(IRI(f"{EX}n{s}"), IRI(f"{EX}value"), literal_from_python(s * 10))
        )
    if state in ("flushed", "overlay"):
        graph.triple_index.flush()
    if state == "overlay":
        for s, p, o in overlay:
            graph.add(
                Triple(IRI(f"{EX}n{s}"), IRI(f"{EX}p{p}"), IRI(f"{EX}n{o}"))
            )
    return graph


def engines(graph, batch_size, parallel):
    """(batched, tuple-at-a-time, term-space) evaluators over ``graph``."""
    return (
        Evaluator(graph, compile=True, vectorize=True,
                  batch_size=batch_size, parallel=parallel),
        Evaluator(graph, compile=True, vectorize=False),
        Evaluator(graph, compile=False),
    )


class TestVectorizedParity:
    @settings(max_examples=40, deadline=None)
    @given(graph_triples, overlay_triples, store_states,
           st.sampled_from(range(len(QUERIES))), batch_sizes, parallelism)
    def test_select_parity(self, encoded, overlay, state, qidx,
                           batch_size, parallel):
        graph = build_graph(encoded, overlay, state)
        query = parse_query(QUERIES[qidx])
        batched, tuple_at_a_time, term_space = engines(
            graph, batch_size, parallel)
        vec = batched.select(query)
        tup = tuple_at_a_time.select(query)
        ref = term_space.select(query)
        assert vec.variables == tup.variables == ref.variables
        # Same physical plan → identical row order.
        assert vec.rows == tup.rows
        # Different engine → same solutions, order implementation-defined.
        assert sorted(map(repr, vec.rows)) == sorted(map(repr, ref.rows))

    @settings(max_examples=30, deadline=None)
    @given(graph_triples, overlay_triples, store_states,
           st.sampled_from(range(len(AGG_QUERIES))), batch_sizes, parallelism)
    def test_aggregate_parity(self, encoded, overlay, state, qidx,
                              batch_size, parallel):
        graph = build_graph(encoded, overlay, state)
        query = parse_query(AGG_QUERIES[qidx])
        batched, tuple_at_a_time, term_space = engines(
            graph, batch_size, parallel)
        vec = batched.select(query)
        tup = tuple_at_a_time.select(query)
        ref = term_space.select(query)
        assert vec.variables == tup.variables == ref.variables
        assert sorted(map(repr, vec.rows)) == sorted(map(repr, tup.rows)) \
            == sorted(map(repr, ref.rows))

    @settings(max_examples=25, deadline=None)
    @given(graph_triples, overlay_triples, store_states, batch_sizes)
    def test_ask_and_construct_parity(self, encoded, overlay, state,
                                      batch_size):
        graph = build_graph(encoded, overlay, state)
        batched, tuple_at_a_time, term_space = engines(graph, batch_size, 1)
        ask = f"ASK {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c }}"
        assert batched.ask(ask) == tuple_at_a_time.ask(ask) == term_space.ask(ask)
        construct = (
            f"CONSTRUCT {{ ?a <{EX}linked> ?b }} WHERE {{ ?a <{EX}p0> ?b }}"
        )
        vec = {t for t in batched.construct(construct)}
        tup = {t for t in tuple_at_a_time.construct(construct)}
        ref = {t for t in term_space.construct(construct)}
        assert vec == tup == ref


class TestPseudoIdAliasing:
    """Plan-local pseudo ids (negative, for terms the store never saw)
    must never reach a composite-key probe unmasked: ``pc*m + (-1-k)``
    equals ``(pc-1)*m + (m-1-k)``, the real key of a *different*
    (predicate, object) pair, so an unmasked probe emits rows the tuple
    engine never produces.  These graphs are laid out so the collision
    lands on a stored triple — the worst case, not just a miss."""

    def collision_graph(self):
        # Id layout (s, p, o encode order): a=0 r=1 p=2 y=3 z=4, m=5.
        # Probing p with pseudo object -1 gives 2*5-1 == 9 == 1*5+4 — the
        # live POS key of (r, z).  A regression emits (?s=a, ?o=unknown).
        graph = Graph()
        a, r, p, z = (IRI(f"{EX}{n}") for n in ("a", "r", "p", "z"))
        graph.add(Triple(a, r, a))
        graph.add(Triple(a, p, IRI(f"{EX}y")))
        graph.add(Triple(a, r, z))
        graph.triple_index.flush()
        terms = graph.term_dictionary
        assert terms.lookup(p) * len(terms) - 1 == \
            terms.lookup(r) * len(terms) + terms.lookup(z)
        return graph

    def assert_parity(self, graph, query_text):
        query = parse_query(query_text)
        batched, tuple_at_a_time, term_space = engines(graph, 64, 1)
        vec = batched.select(query)
        tup = tuple_at_a_time.select(query)
        ref = term_space.select(query)
        assert vec.rows == tup.rows
        assert sorted(map(repr, vec.rows)) == sorted(map(repr, ref.rows))
        return vec.rows

    def test_values_pseudo_object_probe(self):
        rows = self.assert_parity(
            self.collision_graph(),
            f"SELECT ?s ?o WHERE {{ VALUES ?o {{ <{EX}unknown> }} "
            f"?s <{EX}p> ?o }}",
        )
        assert rows == []

    def test_values_mixed_pseudo_and_real_objects(self):
        # One VALUES row is a live object, one a pseudo id: the real row
        # must still join while the pseudo row is masked, in VALUES order.
        rows = self.assert_parity(
            self.collision_graph(),
            f"SELECT ?s ?o WHERE {{ VALUES ?o {{ <{EX}y> <{EX}unknown> }} "
            f"?s <{EX}p> ?o }}",
        )
        assert len(rows) == 1

    def test_values_pseudo_subject_probe(self):
        rows = self.assert_parity(
            self.collision_graph(),
            f"SELECT ?s ?o WHERE {{ VALUES ?s {{ <{EX}unknown> }} "
            f"?s <{EX}p> ?o }}",
        )
        assert rows == []

    def test_unknown_constant_object(self):
        rows = self.assert_parity(
            self.collision_graph(),
            f"SELECT ?s WHERE {{ ?s <{EX}p> <{EX}unknown> }}",
        )
        assert rows == []

    def test_unknown_predicate_contains_shape(self):
        # Fully bound step with a pseudo-id predicate: the contains mask
        # composite ``s*m + pc`` must not alias the previous subject.
        rows = self.assert_parity(
            self.collision_graph(),
            f"SELECT ?s WHERE {{ ?s <{EX}r> <{EX}a> . "
            f"?s <{EX}unknown> <{EX}z> }}",
        )
        assert rows == []


class TestExpansionCap:
    """Fan-outs past _MAX_EXPANSION fall back to the tuple operator
    instead of one unbounded repeat/tile allocation — same rows out."""

    def fanout_graph(self):
        graph = Graph()
        for i in range(6):
            graph.add(Triple(IRI(f"{EX}n{i}"), IRI(f"{EX}p0"),
                             IRI(f"{EX}n{(i + 1) % 6}")))
            graph.add(Triple(IRI(f"{EX}n{i}"), IRI(f"{EX}p1"),
                             IRI(f"{EX}n{(i + 2) % 6}")))
        graph.triple_index.flush()
        return graph

    def assert_parity(self, query_text):
        graph = self.fanout_graph()
        query = parse_query(query_text)
        batched, tuple_at_a_time, _ref = engines(graph, 64, 1)
        assert batched.select(query).rows == tuple_at_a_time.select(query).rows

    def test_cross_product_step_capped(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_MAX_EXPANSION", 4)
        self.assert_parity(
            f"SELECT ?a ?s ?o WHERE {{ ?a <{EX}p1> ?x . ?s <{EX}p0> ?o }}")

    def test_probe_expansion_capped(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_MAX_EXPANSION", 2)
        self.assert_parity(
            f"SELECT ?a ?b ?c WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c }}")
