"""Unit tests for the ResultSet container."""

import pytest

from repro.rdf import IRI, Literal, Variable, XSD_INTEGER
from repro.sparql.results import ResultSet


def num(value):
    return Literal(str(value), datatype=XSD_INTEGER)


@pytest.fixture
def rs():
    return ResultSet(
        [Variable("x"), Variable("n")],
        [
            (IRI("http://example.org/a"), num(1)),
            (IRI("http://example.org/b"), num(2)),
            (IRI("http://example.org/c"), None),
        ],
    )


class TestResultSet:
    def test_len_bool_iter(self, rs):
        assert len(rs) == 3
        assert bool(rs)
        assert not ResultSet([Variable("x")], [])
        assert len(list(iter(rs))) == 3

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            ResultSet([Variable("x")], [(num(1), num(2))])

    def test_index_of_accepts_str_and_variable(self, rs):
        assert rs.index_of("n") == 1
        assert rs.index_of(Variable("n")) == 1
        with pytest.raises(KeyError):
            rs.index_of("missing")

    def test_column(self, rs):
        assert rs.column("n") == [num(1), num(2), None]

    def test_to_dicts_and_python(self, rs):
        dicts = rs.to_dicts()
        assert dicts[0]["x"] == IRI("http://example.org/a")
        values = rs.to_python()
        assert values[0]["n"] == 1
        assert values[2]["n"] is None

    def test_equality_is_order_insensitive(self, rs):
        shuffled = ResultSet(rs.variables, list(reversed(rs.rows)))
        assert rs == shuffled
        different = ResultSet(rs.variables, rs.rows[:2])
        assert rs != different

    def test_equality_respects_variables(self, rs):
        renamed = ResultSet([Variable("y"), Variable("n")], rs.rows)
        assert rs != renamed

    def test_pretty_handles_unbound(self, rs):
        text = rs.pretty()
        assert "?x" in text and "?n" in text
        # Unbound cell renders as blank, not as "None".
        assert "None" not in text

    def test_pretty_truncation_note(self, rs):
        text = rs.pretty(max_rows=1)
        assert "2 more rows" in text

    def test_pretty_unlimited(self, rs):
        assert "more rows" not in rs.pretty(max_rows=None)
