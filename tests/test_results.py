"""Unit tests for the ResultSet container."""

import pytest

from repro.rdf import IRI, Literal, Variable, XSD_INTEGER
from repro.sparql.results import ResultSet


def num(value):
    return Literal(str(value), datatype=XSD_INTEGER)


@pytest.fixture
def rs():
    return ResultSet(
        [Variable("x"), Variable("n")],
        [
            (IRI("http://example.org/a"), num(1)),
            (IRI("http://example.org/b"), num(2)),
            (IRI("http://example.org/c"), None),
        ],
    )


class TestResultSet:
    def test_len_bool_iter(self, rs):
        assert len(rs) == 3
        assert bool(rs)
        assert not ResultSet([Variable("x")], [])
        assert len(list(iter(rs))) == 3

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            ResultSet([Variable("x")], [(num(1), num(2))])

    def test_index_of_accepts_str_and_variable(self, rs):
        assert rs.index_of("n") == 1
        assert rs.index_of(Variable("n")) == 1
        with pytest.raises(KeyError):
            rs.index_of("missing")

    def test_column(self, rs):
        assert rs.column("n") == [num(1), num(2), None]

    def test_to_dicts_and_python(self, rs):
        dicts = rs.to_dicts()
        assert dicts[0]["x"] == IRI("http://example.org/a")
        values = rs.to_python()
        assert values[0]["n"] == 1
        assert values[2]["n"] is None

    def test_equality_is_order_insensitive(self, rs):
        shuffled = ResultSet(rs.variables, list(reversed(rs.rows)))
        assert rs == shuffled
        different = ResultSet(rs.variables, rs.rows[:2])
        assert rs != different

    def test_equality_respects_variables(self, rs):
        renamed = ResultSet([Variable("y"), Variable("n")], rs.rows)
        assert rs != renamed

    def test_pretty_handles_unbound(self, rs):
        text = rs.pretty()
        assert "?x" in text and "?n" in text
        # Unbound cell renders as blank, not as "None".
        assert "None" not in text

    def test_pretty_truncation_note(self, rs):
        text = rs.pretty(max_rows=1)
        assert "2 more rows" in text

    def test_pretty_unlimited(self, rs):
        assert "more rows" not in rs.pretty(max_rows=None)


# ---------------------------------------------------------------------------
# Wire-format serializers (golden files under tests/golden/)
# ---------------------------------------------------------------------------

import json
from pathlib import Path

from repro.rdf import BNode
from repro.sparql.results import (
    SERIALIZERS,
    binding_json,
    to_csv,
    to_sparql_json,
    to_tsv,
)

GOLDEN = Path(__file__).parent / "golden"

XSD = "http://www.w3.org/2001/XMLSchema#"


@pytest.fixture
def wire_rs():
    """One of each term shape: IRI, langtag, typed, quoted, bnode, unbound."""
    return ResultSet(
        [Variable("entity"), Variable("label"), Variable("count")],
        [
            (
                IRI("http://example.org/kg/Germany"),
                Literal("Germany", language="en"),
                Literal("42", datatype=IRI(XSD + "integer")),
            ),
            (
                IRI("http://example.org/kg/France"),
                Literal('say "hi", twice\nplease'),
                Literal("3.14", datatype=IRI(XSD + "decimal")),
            ),
            (BNode("b0"), None, Literal("plain")),
        ],
    )


class TestSerializers:
    def test_sparql_json_matches_golden(self, wire_rs):
        golden = json.loads((GOLDEN / "results.srj").read_text())
        assert json.loads(to_sparql_json(wire_rs)) == golden

    def test_json_unbound_cells_are_omitted(self, wire_rs):
        bindings = json.loads(to_sparql_json(wire_rs))["results"]["bindings"]
        assert "label" not in bindings[2]
        assert set(bindings[0]) == {"entity", "label", "count"}

    def test_csv_matches_golden(self, wire_rs):
        assert to_csv(wire_rs).encode() == (GOLDEN / "results.csv").read_bytes()

    def test_tsv_matches_golden(self, wire_rs):
        assert to_tsv(wire_rs).encode() == (GOLDEN / "results.tsv").read_bytes()

    def test_csv_quotes_per_rfc4180(self):
        rs = ResultSet([Variable("v")], [(Literal('a,"b"\nc'),)])
        assert to_csv(rs) == 'v\r\n"a,""b""\nc"\r\n'

    def test_ask_forms(self):
        assert json.loads(to_sparql_json(True)) == {"head": {}, "boolean": True}
        assert json.loads(to_sparql_json(False))["boolean"] is False
        assert to_csv(True) == "boolean\r\ntrue\r\n"
        assert to_csv(False) == "boolean\r\nfalse\r\n"
        assert to_tsv(True) == "?boolean\ntrue\n"

    def test_binding_json_term_shapes(self):
        assert binding_json(IRI("urn:x")) == {"type": "uri", "value": "urn:x"}
        assert binding_json(BNode("n1")) == {"type": "bnode", "value": "n1"}
        assert binding_json(Literal("hi", language="en")) == {
            "type": "literal", "value": "hi", "xml:lang": "en"}
        assert binding_json(num(7)) == {
            "type": "literal", "value": "7", "datatype": XSD + "integer"}
        with pytest.raises(TypeError):
            binding_json(Variable("v"))

    def test_serializer_table_is_consistent(self):
        # Every negotiable media type maps to a writer plus the concrete
        # Content-Type the response will carry.
        for media, (writer, content_type) in SERIALIZERS.items():
            assert callable(writer)
            assert content_type.split(";")[0] in SERIALIZERS
        assert SERIALIZERS["application/json"][0] is to_sparql_json
