"""Unit tests for SPARQL expression evaluation semantics."""

import pytest

from repro.rdf import IRI, BNode, Literal, Variable, XSD_BOOLEAN, XSD_INTEGER
from repro.sparql import parse_query
from repro.sparql.expressions import (
    ExpressionError,
    effective_boolean_value,
    evaluate,
    term_compare,
)


def expr(text: str):
    """Parse a bare expression by wrapping it in a FILTER."""
    query = parse_query(f"SELECT ?x WHERE {{ ?x <urn:p> ?y . FILTER({text}) }}")
    return query.where.filters()[0].expression


def run(text: str, **bindings):
    binding = {Variable(k): v for k, v in bindings.items()}
    return evaluate(expr(text), binding)


def num(value: int) -> Literal:
    return Literal(str(value), datatype=XSD_INTEGER)


class TestEffectiveBooleanValue:
    def test_boolean_literals(self):
        assert effective_boolean_value(Literal("true", datatype=XSD_BOOLEAN))
        assert not effective_boolean_value(Literal("false", datatype=XSD_BOOLEAN))

    def test_numbers(self):
        assert effective_boolean_value(num(5))
        assert not effective_boolean_value(num(0))

    def test_strings(self):
        assert effective_boolean_value(Literal("x"))
        assert not effective_boolean_value(Literal(""))

    def test_iri_errors(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(IRI("urn:x"))


class TestComparisons:
    def test_numeric_cross_datatype(self):
        a = Literal("5", datatype=XSD_INTEGER)
        b = Literal("5.0", datatype=IRI("http://www.w3.org/2001/XMLSchema#double"))
        assert term_compare(a, b, "=")
        assert term_compare(a, b, "<=")

    def test_string_ordering(self):
        assert term_compare(Literal("abc"), Literal("abd"), "<")

    def test_iri_equality_only(self):
        assert term_compare(IRI("urn:a"), IRI("urn:a"), "=")
        with pytest.raises(ExpressionError):
            term_compare(IRI("urn:a"), IRI("urn:b"), "<")

    def test_incomparable_literals(self):
        with pytest.raises(ExpressionError):
            term_compare(num(3), Literal("x"), "<")


class TestBuiltins:
    def test_str_of_iri(self):
        assert run("STR(?a)", a=IRI("urn:x")).lexical == "urn:x"

    def test_lang_and_datatype(self):
        assert run("LANG(?a)", a=Literal("x", language="en")).lexical == "en"
        assert run("DATATYPE(?a)", a=num(1)) == XSD_INTEGER

    def test_type_checks(self):
        assert effective_boolean_value(run("isIRI(?a)", a=IRI("urn:x")))
        assert effective_boolean_value(run("isLiteral(?a)", a=Literal("x")))
        assert effective_boolean_value(run("isBlank(?a)", a=BNode("b")))
        assert effective_boolean_value(run("isNumeric(?a)", a=num(1)))
        assert not effective_boolean_value(run("isNumeric(?a)", a=Literal("x")))

    def test_bound(self):
        assert effective_boolean_value(run("BOUND(?a)", a=num(1)))
        assert not effective_boolean_value(run("BOUND(?zzz)", a=num(1)))

    def test_coalesce(self):
        value = run("COALESCE(?missing, ?a)", a=num(7))
        assert value.lexical == "7"
        with pytest.raises(ExpressionError):
            run("COALESCE(?m1, ?m2)", a=num(1))

    def test_if(self):
        assert run('IF(?a > 1, "big", "small")', a=num(5)).lexical == "big"
        assert run('IF(?a > 1, "big", "small")', a=num(0)).lexical == "small"

    def test_string_functions(self):
        assert run("STRLEN(?a)", a=Literal("abc")).lexical == "3"
        assert run("UCASE(?a)", a=Literal("abc")).lexical == "ABC"
        assert run("LCASE(?a)", a=Literal("ABC")).lexical == "abc"
        assert effective_boolean_value(run('CONTAINS(?a, "bc")', a=Literal("abcd")))
        assert effective_boolean_value(run('STRSTARTS(?a, "ab")', a=Literal("abcd")))
        assert effective_boolean_value(run('STRENDS(?a, "cd")', a=Literal("abcd")))

    def test_numeric_functions(self):
        assert run("ABS(?a)", a=num(-4)).lexical == "4"
        assert run("CEIL(?a)", a=Literal("1.2", datatype=IRI("http://www.w3.org/2001/XMLSchema#double"))).lexical == "2"
        assert run("FLOOR(?a)", a=Literal("1.8", datatype=IRI("http://www.w3.org/2001/XMLSchema#double"))).lexical == "1"

    def test_regex_flags(self):
        assert effective_boolean_value(run('REGEX(?a, "^ger", "i")', a=Literal("Germany")))
        with pytest.raises(ExpressionError):
            run('REGEX(?a, "[unclosed")', a=Literal("x"))


class TestErrorSemantics:
    def test_unbound_variable_errors(self):
        with pytest.raises(ExpressionError):
            run("?missing > 1", a=num(1))

    def test_division_by_zero(self):
        with pytest.raises(ExpressionError):
            run("?a / 0", a=num(1))

    def test_true_or_error_is_true(self):
        value = run("?a > 1 || ?missing > 1", a=num(5))
        assert effective_boolean_value(value)

    def test_false_and_error_is_false(self):
        value = run("?a > 1 && ?missing > 1", a=num(0))
        assert not effective_boolean_value(value)

    def test_error_propagates_when_undecided(self):
        with pytest.raises(ExpressionError):
            run("?a > 1 && ?missing > 1", a=num(5))

    def test_arithmetic_on_non_numeric(self):
        with pytest.raises(ExpressionError):
            run("?a + 1", a=Literal("x"))


class TestArithmetic:
    def test_integer_preservation(self):
        assert run("?a + ?a", a=num(3)).lexical == "6"
        assert run("?a * 2", a=num(3)).lexical == "6"

    def test_division_yields_float(self):
        value = run("?a / 2", a=num(3))
        assert float(value.lexical) == 1.5

    def test_unary_minus(self):
        assert run("-?a = 0 - ?a", a=num(3)).lexical == "true"

    def test_in_and_not_in(self):
        assert run("?a IN (1, 2, 3)", a=num(2)).lexical == "true"
        assert run("?a NOT IN (1, 2, 3)", a=num(9)).lexical == "true"
