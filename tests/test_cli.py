"""Tests for the interactive CLI shell."""

import io

import pytest

from repro.cli import ExplorerShell, build_endpoint, main, make_parser
from repro.qb import OBSERVATION_CLASS


@pytest.fixture(scope="module")
def shell(mini_endpoint):
    return ExplorerShell(mini_endpoint, OBSERVATION_CLASS)


class TestShellCommands:
    def test_help(self, shell):
        assert "find" in shell.handle("help")

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.handle("frobnicate")

    def test_empty_line(self, shell):
        assert shell.handle("   ") == ""

    def test_profile(self, shell):
        output = shell.handle("profile")
        assert "observations: 120" in output

    def test_find_pick_show_sparql(self, shell):
        output = shell.handle("find Germany, 2014")
        assert "2 candidate queries" in output
        output = shell.handle("pick 0")
        assert "result tuples" in output
        output = shell.handle("show 5")
        assert "Germany" in output  # labels rendered, not IRIs
        output = shell.handle("sparql")
        assert "GROUP BY" in output

    def test_find_without_values(self, shell):
        assert "usage" in shell.handle("find")

    def test_refine_and_apply(self, shell):
        shell.handle("find Germany, 2014")
        shell.handle("pick 0")
        output = shell.handle("refine disaggregate")
        assert "refinements" in output
        output = shell.handle("apply disaggregate 0")
        assert "applied" in output
        output = shell.handle("back")
        assert "backtracked" in output

    def test_refine_unknown_kind(self, shell):
        shell.handle("find 2014")
        shell.handle("pick 0")
        assert "error" in shell.handle("refine clustering")

    def test_find_unknown_value_reports_error(self, shell):
        assert "error" in shell.handle("find Atlantis")

    def test_insights_command(self, shell):
        shell.handle("find Germany")
        shell.handle("pick 0")
        output = shell.handle("insights")
        assert "error" not in output

    def test_trace_command(self, shell):
        shell.handle("find Germany")
        shell.handle("pick 0")
        output = shell.handle("trace")
        assert "# Exploration trace" in output

    def test_contrast_command(self, shell):
        output = shell.handle("contrast Germany vs France")
        assert "side A" in output
        assert "usage" in shell.handle("contrast Germany")

    def test_rollup_listed_in_help(self, shell):
        assert "rollup" in shell.handle("help")

    def test_pick_before_find_reports_error(self, mini_endpoint):
        fresh = ExplorerShell(mini_endpoint, OBSERVATION_CLASS)
        assert "error" in fresh.handle("pick 0")


class TestEntryPoint:
    def test_parser_defaults(self):
        args = make_parser().parse_args([])
        assert args.dataset == "eurostat"
        assert args.scale == 0.4

    def test_build_endpoint_from_generator(self):
        args = make_parser().parse_args(
            ["--dataset", "eurostat", "--observations", "50", "--scale", "0.1"]
        )
        endpoint, cls = build_endpoint(args)
        assert cls == OBSERVATION_CLASS
        assert endpoint.graph.count(None, None, None) > 0

    def test_build_endpoint_from_ntriples(self, tmp_path, mini_kg):
        path = tmp_path / "mini.nt"
        path.write_text(mini_kg.graph.to_ntriples(), encoding="utf-8")
        args = make_parser().parse_args(["--ntriples", str(path)])
        endpoint, cls = build_endpoint(args)
        assert len(list(endpoint.graph.triples())) == len(mini_kg.graph)

    def test_main_scripted_session(self):
        stdin = io.StringIO("profile\nfind Germany\npick 0\nshow 3\nquit\n")
        stdout = io.StringIO()
        code = main(
            ["--dataset", "eurostat", "--observations", "100", "--scale", "0.1"],
            stdin=stdin, stdout=stdout,
        )
        assert code == 0
        transcript = stdout.getvalue()
        assert "ready:" in transcript
        assert "candidate queries" in transcript
        assert "bye" in transcript


class TestSubcommands:
    """The `query` and `serve` entry points (see repro.server)."""

    COMMON = ["--dataset", "eurostat", "--observations", "80", "--scale", "0.1"]

    def _query(self, *extra):
        stdout = io.StringIO()
        code = main(["query", *self.COMMON, *extra], stdout=stdout)
        return code, stdout.getvalue()

    def test_flags_compose_after_subcommand(self):
        args = make_parser().parse_args(
            ["serve", "--dataset", "production", "--port", "0"])
        assert args.command == "serve"
        assert args.dataset == "production"
        assert args.port == 0
        # main-parser defaults still land when the subcommand omits them
        assert args.workers == 4 and args.cache_size == 4096

    def test_query_formats(self):
        query = "SELECT DISTINCT ?p WHERE { ?s ?p ?o } ORDER BY ?p LIMIT 3"
        import json as jsonlib

        code, out = self._query(query, "--format", "json")
        assert code == 0
        document = jsonlib.loads(out)
        assert document["head"]["vars"] == ["p"]
        assert len(document["results"]["bindings"]) == 3

        code, out = self._query(query, "--format", "csv")
        assert code == 0
        assert out.startswith("p\r\n") and out.endswith("\r\n")

        code, out = self._query(query, "--format", "tsv")
        assert code == 0
        assert out.startswith("?p\n")

        code, out = self._query(query)  # default: pretty table
        assert code == 0
        assert "?p" in out

    def test_query_ask_and_timeout_literals(self):
        code, out = self._query("ASK { ?s ?p ?o }", "--format", "json")
        assert code == 0 and '"boolean": true' in out
        code, out = self._query("ASK { ?s ?p ?o }")
        assert code == 0 and out.strip() == "true"
        # timeout 'none' is explicit-unlimited; 0 must raise, not fall
        # back to the default.
        code, _ = self._query("ASK { ?s ?p ?o }", "--timeout", "none")
        assert code == 0
        from repro.errors import QueryTimeoutError

        with pytest.raises(QueryTimeoutError):
            self._query("SELECT ?s WHERE { ?s ?p ?o }", "--timeout", "0")

    def test_serve_end_to_end(self):
        import json as jsonlib
        import re
        import threading
        import time
        import urllib.request

        class BlockingStdin:
            def __init__(self):
                self.release = threading.Event()

            def __iter__(self):
                self.release.wait(60)
                return iter(())

        stdin, stdout = BlockingStdin(), io.StringIO()
        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(main(
                ["serve", "--port", "0", *self.COMMON],
                stdin=stdin, stdout=stdout)),
            daemon=True)
        thread.start()
        deadline = time.monotonic() + 60
        url = None
        while url is None and time.monotonic() < deadline:
            match = re.search(r"serving SPARQL at (http://\S+)/sparql",
                              stdout.getvalue())
            url = match.group(1) if match else None
            time.sleep(0.01)
        assert url, stdout.getvalue()
        with urllib.request.urlopen(f"{url}/healthz", timeout=10) as response:
            assert jsonlib.load(response) == {"status": "ok"}
        stdin.release.set()
        thread.join(timeout=60)
        assert codes == [0]
        assert "bye" in stdout.getvalue()
