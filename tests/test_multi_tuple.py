"""Tests for multi-tuple REOLAP and direct-IRI example input (footnote 3)."""

import pytest

from repro.core import find_interpretations, reolap, reolap_multi
from repro.errors import SynthesisError
from repro.rdf import IRI

MINI = "http://example.org/mini/"


def prop(name):
    return IRI(MINI + "prop/" + name)


class TestDirectIRIInput:
    def test_iri_keyword_resolves_without_label_lookup(self, mini_endpoint, mini_vgraph, mini_kg):
        member = next(
            m for m in mini_kg.members_of("origin", "country") if m.label == "Germany"
        )
        by_iri = find_interpretations(mini_endpoint, mini_vgraph, member.iri.n3())
        by_label = find_interpretations(mini_endpoint, mini_vgraph, "Germany")
        assert {(i.member, i.level.path) for i in by_iri} == {
            (i.member, i.level.path) for i in by_label
        }

    def test_bare_absolute_iri(self, mini_endpoint, mini_vgraph, mini_kg):
        member = mini_kg.members_of("origin", "country")[0]
        interpretations = find_interpretations(mini_endpoint, mini_vgraph, member.iri.value)
        assert interpretations
        assert all(i.member == member.iri for i in interpretations)

    def test_mixed_example_iri_and_label(self, mini_endpoint, mini_vgraph, mini_kg):
        member = next(
            m for m in mini_kg.members_of("origin", "country") if m.label == "Syria"
        )
        queries = reolap(mini_endpoint, mini_vgraph, (member.iri.n3(), "2014"))
        assert queries
        for query in queries:
            assert any(a.member == member.iri for a in query.anchors)

    def test_unknown_iri_matches_nothing(self, mini_endpoint, mini_vgraph):
        assert find_interpretations(
            mini_endpoint, mini_vgraph, "<http://example.org/nope>"
        ) == []


class TestMultiTupleSynthesis:
    def test_two_country_tuples(self, mini_endpoint, mini_vgraph):
        queries = reolap_multi(
            mini_endpoint, mini_vgraph, [("Germany", "2014"), ("France", "2013")]
        )
        assert queries
        for query in queries:
            groups = {a.group for a in query.anchors}
            assert groups == {0, 1}

    def test_containment_of_every_tuple(self, mini_endpoint, mini_vgraph):
        queries = reolap_multi(
            mini_endpoint, mini_vgraph, [("Germany", "2014"), ("France", "2013")]
        )
        for query in queries:
            results = mini_endpoint.select(query.to_select())
            matched_groups = set()
            for index in query.anchor_row_indexes(results):
                row = results.rows[index]
                for group in (0, 1):
                    anchors = [a for a in query.anchors if a.group == group]
                    columns = [results.index_of(a.variable) for a in anchors]
                    if all(row[c] == a.member for c, a in zip(columns, anchors)):
                        matched_groups.add(group)
            assert matched_groups == {0, 1}

    def test_single_tuple_delegates(self, mini_endpoint, mini_vgraph):
        single = reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"))
        multi = reolap_multi(mini_endpoint, mini_vgraph, [("Germany", "2014")])
        assert [q.sparql() for q in multi] == [q.sparql() for q in single]

    def test_column_disambiguation(self, mini_endpoint, mini_vgraph):
        # A second tuple whose column value is unambiguous narrows the
        # first column's readings: "Europe"/"Asia" are continents only,
        # so both columns must agree on the continent level.
        queries = reolap_multi(mini_endpoint, mini_vgraph, [("Europe",), ("Asia",)])
        assert queries
        for query in queries:
            assert all(d.level.depth == 2 for d in query.dimensions)

    def test_arity_mismatch_raises(self, mini_endpoint, mini_vgraph):
        with pytest.raises(SynthesisError):
            reolap_multi(mini_endpoint, mini_vgraph, [("Germany", "2014"), ("France",)])

    def test_incompatible_columns_raise(self, mini_endpoint, mini_vgraph):
        # "Germany" (country) and "2014" (year) share no level.
        with pytest.raises(SynthesisError):
            reolap_multi(mini_endpoint, mini_vgraph, [("Germany",), ("2014",)])

    def test_empty_examples_raise(self, mini_endpoint, mini_vgraph):
        with pytest.raises(SynthesisError):
            reolap_multi(mini_endpoint, mini_vgraph, [])
        with pytest.raises(SynthesisError):
            reolap_multi(mini_endpoint, mini_vgraph, [()])

    def test_refinements_respect_any_group_semantics(self, mini_endpoint, mini_vgraph):
        from repro.core import TopK

        queries = reolap_multi(
            mini_endpoint, mini_vgraph, [("Germany", "2014"), ("France", "2013")]
        )
        query = queries[0]
        results = mini_endpoint.select(query.to_select())
        for refinement in TopK().propose(query, results):
            refined = mini_endpoint.select(refinement.query.to_select())
            # At least one of the two example tuples survives.
            assert refinement.query.anchor_row_indexes(refined)
