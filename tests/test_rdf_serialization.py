"""Unit tests for N-Triples and Turtle parsing/serialization."""

import io

import pytest

from repro.errors import RDFSyntaxError
from repro.rdf import (
    IRI,
    BNode,
    Literal,
    RDF,
    Triple,
    XSD_INTEGER,
    parse_ntriples,
    parse_turtle,
    serialize_ntriples,
    serialize_turtle,
)


EX = "http://example.org/"


def t(s, p, o):
    return Triple(IRI(EX + s), IRI(EX + p), o if not isinstance(o, str) else IRI(EX + o))


class TestNTriples:
    def test_parse_basic(self):
        doc = f"<{EX}s> <{EX}p> <{EX}o> .\n"
        triples = list(parse_ntriples(doc))
        assert triples == [t("s", "p", "o")]

    def test_parse_literal_variants(self):
        doc = (
            f'<{EX}s> <{EX}p> "plain" .\n'
            f'<{EX}s> <{EX}p> "tagged"@en .\n'
            f'<{EX}s> <{EX}p> "403"^^<http://www.w3.org/2001/XMLSchema#integer> .\n'
        )
        objects = [tr.o for tr in parse_ntriples(doc)]
        assert objects == [
            Literal("plain"),
            Literal("tagged", language="en"),
            Literal("403", datatype=XSD_INTEGER),
        ]

    def test_parse_bnode(self):
        doc = f"_:n1 <{EX}p> _:n2 .\n"
        (triple,) = parse_ntriples(doc)
        assert triple.s == BNode("n1")
        assert triple.o == BNode("n2")

    def test_parse_escapes(self):
        doc = f'<{EX}s> <{EX}p> "line\\nbreak \\"q\\"" .\n'
        (triple,) = parse_ntriples(doc)
        assert triple.o.lexical == 'line\nbreak "q"'

    def test_skips_comments_and_blank_lines(self):
        doc = f"# comment\n\n<{EX}s> <{EX}p> <{EX}o> .\n"
        assert len(list(parse_ntriples(doc))) == 1

    def test_error_reports_line_number(self):
        doc = f"<{EX}s> <{EX}p> <{EX}o> .\nbroken line\n"
        with pytest.raises(RDFSyntaxError) as err:
            list(parse_ntriples(doc))
        assert err.value.line == 2

    def test_missing_dot(self):
        with pytest.raises(RDFSyntaxError):
            list(parse_ntriples(f"<{EX}s> <{EX}p> <{EX}o>\n"))

    def test_literal_subject_rejected(self):
        with pytest.raises(RDFSyntaxError):
            list(parse_ntriples(f'"lit" <{EX}p> <{EX}o> .\n'))

    def test_roundtrip(self):
        triples = [
            t("s", "p", "o"),
            t("s", "p", Literal("x \n y", language="de")),
            t("s", "q", Literal("7", datatype=XSD_INTEGER)),
        ]
        doc = serialize_ntriples(triples)
        assert list(parse_ntriples(doc)) == triples

    def test_serialize_to_stream(self):
        out = io.StringIO()
        serialize_ntriples([t("s", "p", "o")], out)
        assert out.getvalue().strip().endswith(".")

    def test_parse_from_file_object(self):
        source = io.StringIO(f"<{EX}s> <{EX}p> <{EX}o> .\n")
        assert len(list(parse_ntriples(source))) == 1


class TestTurtle:
    def test_prefix_and_a(self):
        doc = (
            "@prefix ex: <http://example.org/> .\n"
            "ex:s a ex:Type .\n"
        )
        (triple,) = parse_turtle(doc)
        assert triple.p == RDF.type
        assert triple.o == IRI(EX + "Type")

    def test_predicate_and_object_lists(self):
        doc = (
            "@prefix ex: <http://example.org/> .\n"
            "ex:s ex:p ex:a, ex:b ; ex:q ex:c .\n"
        )
        triples = set(parse_turtle(doc))
        assert triples == {t("s", "p", "a"), t("s", "p", "b"), t("s", "q", "c")}

    def test_numeric_shorthand(self):
        doc = "@prefix ex: <http://example.org/> .\nex:s ex:p 42 .\n"
        (triple,) = parse_turtle(doc)
        assert triple.o == Literal("42", datatype=XSD_INTEGER)

    def test_decimal_and_boolean(self):
        doc = "@prefix ex: <http://example.org/> .\nex:s ex:p 4.5 ; ex:q true .\n"
        objs = {tr.o.lexical for tr in parse_turtle(doc)}
        assert objs == {"4.5", "true"}

    def test_undeclared_prefix(self):
        with pytest.raises(RDFSyntaxError):
            list(parse_turtle("ex:s ex:p ex:o .\n"))

    def test_datatyped_literal_with_pname(self):
        doc = (
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
            "@prefix ex: <http://example.org/> .\n"
            'ex:s ex:p "7"^^xsd:integer .\n'
        )
        (triple,) = parse_turtle(doc)
        assert triple.o == Literal("7", datatype=XSD_INTEGER)

    def test_serialize_roundtrip(self):
        triples = [t("s", "p", "a"), t("s", "p", "b"), t("z", "q", Literal("text"))]
        doc = serialize_turtle(triples, prefixes={"ex": EX})
        assert set(parse_turtle(doc)) == set(triples)

    def test_serialize_uses_prefixes(self):
        doc = serialize_turtle([t("s", "p", "o")], prefixes={"ex": EX})
        assert "ex:s" in doc
        assert "@prefix ex:" in doc
