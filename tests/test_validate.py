"""Tests for the statistical-KG integrity validator."""

import pytest

from repro.qb import CubeBuilder, OBSERVATION_CLASS, validate_cube
from repro.rdf import IRI, Literal, Triple

from tests.conftest import mini_schema


@pytest.fixture()
def kg():
    return CubeBuilder(mini_schema(), seed=3).build(40)


class TestValidateCube:
    def test_generated_cube_is_valid(self, kg):
        report = validate_cube(kg.graph, kg.schema)
        assert report.ok, report.summary()
        assert report.observations_checked == 40
        assert report.members_checked > 0
        assert "OK" in report.summary()

    def test_missing_measure_detected(self, kg):
        builder = CubeBuilder(kg.schema)
        obs = builder.observation_iri(0)
        measure = builder.measure_predicate(kg.schema.measures[0])
        value = kg.graph.value(obs, measure, None)
        kg.graph.remove(Triple(obs, measure, value))
        try:
            report = validate_cube(kg.graph, kg.schema)
            assert not report.ok
            assert report.by_kind().get("missing-measure") == 1
        finally:
            kg.graph.add(Triple(obs, measure, value))

    def test_missing_dimension_detected(self, kg):
        builder = CubeBuilder(kg.schema)
        obs = builder.observation_iri(1)
        predicate = builder.dimension_predicate(kg.schema.dimensions[0])
        member = kg.graph.value(obs, predicate, None)
        kg.graph.remove(Triple(obs, predicate, member))
        try:
            report = validate_cube(kg.graph, kg.schema)
            assert report.by_kind().get("missing-dimension") == 1
        finally:
            kg.graph.add(Triple(obs, predicate, member))

    def test_non_numeric_measure_detected(self, kg):
        builder = CubeBuilder(kg.schema)
        obs = builder.observation_iri(2)
        measure = builder.measure_predicate(kg.schema.measures[0])
        value = kg.graph.value(obs, measure, None)
        kg.graph.remove(Triple(obs, measure, value))
        kg.graph.add(Triple(obs, measure, Literal("not a number")))
        try:
            report = validate_cube(kg.graph, kg.schema)
            assert report.by_kind().get("non-numeric-measure") == 1
        finally:
            kg.graph.remove(Triple(obs, measure, Literal("not a number")))
            kg.graph.add(Triple(obs, measure, value))

    def test_unlabelled_member_detected(self, kg):
        from repro.qb import LABEL

        member = kg.members_of("origin", "country")[0]
        label = kg.graph.value(member.iri, LABEL, None)
        kg.graph.remove(Triple(member.iri, LABEL, label))
        try:
            report = validate_cube(kg.graph, kg.schema)
            assert report.by_kind().get("unlabelled-member") == 1
        finally:
            kg.graph.add(Triple(member.iri, LABEL, label))

    def test_dangling_rollup_detected(self, kg):
        builder = CubeBuilder(kg.schema)
        rollup = builder.rollup_predicate("in_continent")
        member = kg.members_of("origin", "country")[0]
        parent = kg.graph.value(member.iri, rollup, None)
        kg.graph.remove(Triple(member.iri, rollup, parent))
        try:
            report = validate_cube(kg.graph, kg.schema)
            assert report.by_kind().get("dangling-rollup") == 1
        finally:
            kg.graph.add(Triple(member.iri, rollup, parent))

    def test_max_violations_caps_collection(self, kg):
        builder = CubeBuilder(kg.schema)
        measure = builder.measure_predicate(kg.schema.measures[0])
        removed = []
        for index in range(10):
            obs = builder.observation_iri(index)
            value = kg.graph.value(obs, measure, None)
            kg.graph.remove(Triple(obs, measure, value))
            removed.append((obs, value))
        try:
            report = validate_cube(kg.graph, kg.schema, max_violations=3)
            assert len(report.violations) == 3
            assert not report.ok
        finally:
            for obs, value in removed:
                kg.graph.add(Triple(obs, measure, value))
