"""Tests for query-plan explanation, suggestions, and workload generation."""

import pytest

from repro.core import ExplorationSession, reolap, suggest
from repro.sparql import explain, parse_query
from repro.workloads import example_tuples, example_tuples_from_vgraph, exploration_walk

EX = "http://example.org/"


class TestExplain:
    def test_plan_orders_selective_first(self, mini_kg, mini_endpoint, mini_vgraph):
        (query, *_rest) = reolap(mini_endpoint, mini_vgraph, ("Germany",))
        plan = explain(mini_kg.graph, query.to_select())
        assert plan.optimized
        assert len(plan.steps) == len(query.to_select().where.triple_patterns())
        # Estimates never grow then shrink arbitrarily: the first step is
        # the cheapest under the greedy policy.
        first = plan.steps[0].estimated_cardinality
        assert first <= max(s.estimated_cardinality for s in plan.steps)

    def test_plan_without_optimizer_preserves_text_order(self, mini_kg):
        text = (
            f"SELECT ?a WHERE {{ ?a <{EX}p1> ?b . ?b <{EX}p2> ?c . }}"
        )
        plan = explain(mini_kg.graph, text, optimize=False)
        assert not plan.optimized
        assert [s.position for s in plan.steps] == [1, 2]

    def test_render(self, mini_kg, mini_endpoint, mini_vgraph):
        (query, *_rest) = reolap(mini_endpoint, mini_vgraph, ("Germany",))
        rendered = explain(mini_kg.graph, query.to_select()).render()
        assert "join order (optimizer on):" in rendered
        assert "est." in rendered

    def test_rejects_ask(self, mini_kg):
        with pytest.raises(TypeError):
            explain(mini_kg.graph, f"ASK {{ ?a <{EX}p> ?b }}")

    def test_binds_tracking(self, mini_kg):
        text = f"SELECT ?a ?c WHERE {{ ?a <{EX}p1> ?b . ?b <{EX}p2> ?c . }}"
        plan = explain(mini_kg.graph, text, optimize=False)
        assert plan.steps[0].binds == ("a", "b")
        assert plan.steps[1].binds == ("c",)


class TestSuggest:
    def test_prefix_completion(self, mini_endpoint, mini_vgraph):
        suggestions = suggest(mini_endpoint, mini_vgraph, "Ger")
        labels = {s.label for s in suggestions}
        assert "Germany" in labels

    def test_ambiguity_reported(self, mini_endpoint, mini_vgraph):
        (germany,) = [s for s in suggest(mini_endpoint, mini_vgraph, "Germany")
                      if s.label == "Germany"]
        assert germany.is_ambiguous  # origin and destination country
        assert len(germany.levels) == 2
        assert "Germany" in germany.render()

    def test_empty_prefix(self, mini_endpoint, mini_vgraph):
        assert suggest(mini_endpoint, mini_vgraph, "   ") == []

    def test_no_match(self, mini_endpoint, mini_vgraph):
        assert suggest(mini_endpoint, mini_vgraph, "zzzz") == []

    def test_limit_respected(self, eurostat_endpoint, eurostat_vgraph):
        suggestions = suggest(eurostat_endpoint, eurostat_vgraph, "c", limit=3)
        assert len(suggestions) <= 3


class TestWorkloads:
    def test_example_tuples_shape(self, mini_kg):
        inputs = example_tuples(mini_kg, size=2, count=5, seed=1)
        assert len(inputs) == 5
        assert all(len(t) == 2 for t in inputs)

    def test_example_tuples_deterministic(self, mini_kg):
        assert example_tuples(mini_kg, 2, seed=4) == example_tuples(mini_kg, 2, seed=4)
        assert example_tuples(mini_kg, 2, seed=4) != example_tuples(mini_kg, 2, seed=5)

    def test_size_validation(self, mini_kg):
        with pytest.raises(ValueError):
            example_tuples(mini_kg, size=99)

    def test_sampled_labels_are_synthesizable(self, mini_kg, mini_endpoint, mini_vgraph):
        for example in example_tuples(mini_kg, size=1, count=5, seed=2):
            assert reolap(mini_endpoint, mini_vgraph, example)

    def test_vgraph_sampling_without_ground_truth(self, mini_endpoint, mini_vgraph):
        inputs = example_tuples_from_vgraph(mini_endpoint, mini_vgraph, size=2, count=3, seed=3)
        assert len(inputs) == 3
        for example in inputs:
            assert reolap(mini_endpoint, mini_vgraph, example)

    def test_exploration_walk(self, mini_endpoint, mini_vgraph):
        session = ExplorationSession(mini_endpoint, mini_vgraph)
        sizes = list(
            exploration_walk(session, ("Germany",), ("disaggregate", "topk"), seed=0)
        )
        assert len(sizes) >= 2
        assert all(size > 0 for size in sizes)
