"""Tests for REOLAP query synthesis (Algorithm 1 / Problem 1)."""

import pytest

from repro.core import SynthesisReport, reolap
from repro.errors import SynthesisError
from repro.rdf import IRI, Variable
from repro.sparql import parse_query

MINI = "http://example.org/mini/"


def prop(name):
    return IRI(MINI + "prop/" + name)


class TestSynthesis:
    def test_germany_2014_yields_two_queries(self, mini_endpoint, mini_vgraph):
        """The paper's running example: origin and destination readings."""
        queries = reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"))
        assert len(queries) == 2
        dimension_sets = {
            frozenset(d.level.dimension_predicate for d in q.dimensions) for q in queries
        }
        assert dimension_sets == {
            frozenset({prop("country_of_origin"), prop("ref_period")}),
            frozenset({prop("country_of_destination"), prop("ref_period")}),
        }

    def test_minimality(self, mini_endpoint, mini_vgraph):
        """Queries contain exactly the dimensions matched by the example."""
        queries = reolap(mini_endpoint, mini_vgraph, ("2014",))
        assert all(len(q.dimensions) == 1 for q in queries)

    def test_continental_example_groups_at_continent(self, mini_endpoint, mini_vgraph):
        queries = reolap(mini_endpoint, mini_vgraph, ("Europe",))
        assert queries
        assert all(d.level.depth == 2 for q in queries for d in q.dimensions)

    def test_all_aggregates_projected(self, mini_endpoint, mini_vgraph):
        (query, *_rest) = reolap(mini_endpoint, mini_vgraph, ("2014",))
        select = query.to_select()
        aliases = {p.variable.name for p in select.projections}
        assert {"sum_num_applicants", "min_num_applicants",
                "max_num_applicants", "avg_num_applicants"} <= aliases

    def test_generated_sparql_roundtrips(self, mini_endpoint, mini_vgraph):
        for query in reolap(mini_endpoint, mini_vgraph, ("Germany", "2014")):
            text = query.sparql()
            reparsed = parse_query(text)
            assert reparsed.to_sparql() == text

    def test_queries_return_nonempty_results(self, mini_endpoint, mini_vgraph):
        """Correctness (Section 5.3): every candidate has results."""
        for query in reolap(mini_endpoint, mini_vgraph, ("Syria", "2013")):
            results = mini_endpoint.select(query.to_select())
            assert len(results) > 0

    def test_example_containment(self, mini_endpoint, mini_vgraph):
        """The example members appear in the results (T_E ⊑ T)."""
        for query in reolap(mini_endpoint, mini_vgraph, ("Germany", "2014")):
            results = mini_endpoint.select(query.to_select())
            assert query.anchor_row_indexes(results)

    def test_two_values_same_level_are_compatible(self, mini_endpoint, mini_vgraph):
        # Germany and France can both be countries of destination: the
        # combination is consistent and groups by one country variable.
        queries = reolap(mini_endpoint, mini_vgraph, ("Germany", "France"))
        assert queries
        assert any(len(q.dimensions) == 1 for q in queries)

    def test_same_dimension_different_levels_skipped(self, mini_endpoint, mini_vgraph):
        # "Germany" (country) and "Europe" (continent) in the same dimension
        # are contradictory; only cross-dimension combinations survive
        # (e.g. origin country x destination continent).
        report = SynthesisReport()
        queries = reolap(
            mini_endpoint, mini_vgraph, ("Germany", "Europe"), report=report
        )
        assert report.combinations_invalid > 0
        for query in queries:
            dims = [d.level.dimension_predicate for d in query.dimensions]
            assert len(set(dims)) == len(dims)

    def test_empty_example_raises(self, mini_endpoint, mini_vgraph):
        with pytest.raises(SynthesisError):
            reolap(mini_endpoint, mini_vgraph, ())

    def test_unmatched_value_raises(self, mini_endpoint, mini_vgraph):
        with pytest.raises(SynthesisError):
            reolap(mini_endpoint, mini_vgraph, ("Germany", "Atlantis"))

    def test_report_statistics(self, mini_endpoint, mini_vgraph):
        report = SynthesisReport()
        reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"), report=report)
        assert report.keyword_interpretations["Germany"] == 2
        assert report.keyword_interpretations["2014"] == 1
        assert report.combinations_considered == 2
        assert report.total_interpretations == 3

    def test_description_mentions_levels_and_example(self, mini_endpoint, mini_vgraph):
        (query, *_ignored) = reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"))
        assert "grouped by" in query.description
        assert "Germany" in query.description

    def test_deterministic_order(self, mini_endpoint, mini_vgraph):
        a = reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"))
        b = reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"))
        assert [q.sparql() for q in a] == [q.sparql() for q in b]

    def test_duplicate_keywords_collapse(self, mini_endpoint, mini_vgraph):
        # The same value twice adds no new grouping dimension.
        queries_single = reolap(mini_endpoint, mini_vgraph, ("2014",))
        queries_double = reolap(mini_endpoint, mini_vgraph, ("2014", "2014"))
        assert {q.sparql() for q in queries_double} == {q.sparql() for q in queries_single}


class TestEurostatSynthesis:
    def test_input_size_grows_interpretations(self, eurostat_endpoint, eurostat_vgraph):
        r1, r2 = SynthesisReport(), SynthesisReport()
        reolap(eurostat_endpoint, eurostat_vgraph, ("Germany",), report=r1)
        reolap(eurostat_endpoint, eurostat_vgraph, ("Germany", "2010"), report=r2)
        assert r2.combinations_considered >= r1.combinations_considered

    def test_typical_candidate_count_below_ten(self, eurostat_endpoint, eurostat_vgraph):
        """Fig. 7b: small inputs produce fewer than ten candidates."""
        queries = reolap(eurostat_endpoint, eurostat_vgraph, ("Germany", "2010"))
        assert 1 <= len(queries) < 10
