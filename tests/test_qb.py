"""Unit tests for cube schema descriptors and the cube builder."""

import pytest

from repro.errors import SchemaError
from repro.qb import (
    CubeBuilder,
    CubeSchema,
    DimensionSpec,
    HierarchySpec,
    LABEL,
    LevelSpec,
    MEMBER_OF,
    MeasureSpec,
    OBSERVATION_CLASS,
    TYPE,
)
from repro.rdf import IRI, Literal


def simple_schema(**overrides) -> CubeSchema:
    country = LevelSpec("country", 4, pool="country",
                        label_values=("Germany", "France", "Syria", "China"))
    continent = LevelSpec("continent", 2, label_values=("Europe", "Asia"))
    year = LevelSpec("year", 3, label_values=("2013", "2014", "2015"))
    defaults = dict(
        name="mini",
        namespace="http://example.org/mini/",
        dimensions=(
            DimensionSpec(
                "origin",
                (HierarchySpec("origin_geo", (country, continent), rollup_names=("in_continent",)),),
                predicate_name="country_of_origin",
            ),
            DimensionSpec(
                "destination",
                (HierarchySpec("dest_geo", (country,)),),
                predicate_name="country_of_destination",
            ),
            DimensionSpec("period", (HierarchySpec("period", (year,)),)),
        ),
        measures=(MeasureSpec("applicants", low=0, high=100),),
    )
    defaults.update(overrides)
    return CubeSchema(**defaults)


class TestSchemaValidation:
    def test_level_requires_members(self):
        with pytest.raises(SchemaError):
            LevelSpec("x", 0)

    def test_level_label_shortage(self):
        with pytest.raises(SchemaError):
            LevelSpec("x", 3, label_values=("a",))

    def test_hierarchy_default_rollup_names(self):
        h = HierarchySpec("h", (LevelSpec("a", 2), LevelSpec("b", 2)))
        assert h.rollup_names == ("in_b",)

    def test_hierarchy_rollup_count_mismatch(self):
        with pytest.raises(SchemaError):
            HierarchySpec("h", (LevelSpec("a", 2), LevelSpec("b", 2)), rollup_names=("x", "y"))

    def test_hierarchy_duplicate_level(self):
        lvl = LevelSpec("a", 2)
        with pytest.raises(SchemaError):
            HierarchySpec("h", (lvl, lvl))

    def test_dimension_base_levels_must_agree(self):
        a, b = LevelSpec("a", 2), LevelSpec("b", 2)
        with pytest.raises(SchemaError):
            DimensionSpec("d", (HierarchySpec("h1", (a,)), HierarchySpec("h2", (b,))))

    def test_cube_requires_dimension_and_measure(self):
        dim = DimensionSpec("d", (HierarchySpec("h", (LevelSpec("a", 2),)),))
        with pytest.raises(SchemaError):
            CubeSchema("c", (), (MeasureSpec("m"),))
        with pytest.raises(SchemaError):
            CubeSchema("c", (dim,), ())

    def test_duplicate_dimension_names(self):
        dim = DimensionSpec("d", (HierarchySpec("h", (LevelSpec("a", 2),)),))
        with pytest.raises(SchemaError):
            CubeSchema("c", (dim, dim), (MeasureSpec("m"),))

    def test_measure_bounds(self):
        with pytest.raises(SchemaError):
            MeasureSpec("m", low=10, high=0)

    def test_statistics(self):
        schema = simple_schema()
        stats = schema.describe()
        assert stats["D"] == 3
        assert stats["M"] == 1
        assert stats["H"] == 3
        assert stats["L"] == 4  # origin country+continent, dest country, year
        assert stats["N_D"] == 4 + 2 + 4 + 3


class TestCubeBuilder:
    @pytest.fixture
    def kg(self):
        return CubeBuilder(simple_schema(), seed=7).build(50)

    def test_observation_count(self, kg):
        obs = list(kg.graph.subjects(TYPE, OBSERVATION_CLASS))
        assert len(obs) == 50

    def test_every_observation_fully_connected(self, kg):
        builder = CubeBuilder(simple_schema(), seed=7)
        origin = builder.dimension_predicate(kg.schema.dimensions[0])
        measure = builder.measure_predicate(kg.schema.measures[0])
        for obs in kg.graph.subjects(TYPE, OBSERVATION_CLASS):
            assert kg.graph.value(obs, origin, None) is not None
            value = kg.graph.value(obs, measure, None)
            assert value is not None and value.is_numeric

    def test_shared_pool_reuses_member_iris(self, kg):
        origin_members = {m.iri for m in kg.members_of("origin", "country")}
        dest_members = {m.iri for m in kg.members_of("destination", "country")}
        assert origin_members == dest_members

    def test_members_have_labels(self, kg):
        for member in kg.members_of("origin", "country"):
            assert kg.graph.value(member.iri, LABEL, None) == Literal(member.label)

    def test_rollup_edges_exist(self, kg):
        builder = CubeBuilder(simple_schema(), seed=7)
        rollup = builder.rollup_predicate("in_continent")
        for member in kg.members_of("origin", "country"):
            parents = list(kg.graph.objects(member.iri, rollup))
            assert len(parents) == 1

    def test_member_of_annotations(self, kg):
        member = kg.members_of("origin", "country")[0]
        levels = set(kg.graph.objects(member.iri, MEMBER_OF))
        # The country pool is shared, so the member sits in both the origin
        # and the destination country level.
        assert kg.level_iri[("origin", "country")] in levels
        assert kg.level_iri[("destination", "country")] in levels

    def test_deterministic_generation(self):
        a = CubeBuilder(simple_schema(), seed=3).build(20)
        b = CubeBuilder(simple_schema(), seed=3).build(20)
        assert sorted(a.graph.triples()) == sorted(b.graph.triples())

    def test_different_seeds_differ(self):
        a = CubeBuilder(simple_schema(), seed=1).build(20)
        b = CubeBuilder(simple_schema(), seed=2).build(20)
        assert sorted(a.graph.triples()) != sorted(b.graph.triples())

    def test_predicate_labels(self, kg):
        builder = CubeBuilder(simple_schema(), seed=7)
        predicate = builder.dimension_predicate(kg.schema.dimensions[0])
        assert kg.graph.value(predicate, LABEL, None) == Literal("Country Of Origin")

    def test_observation_attributes(self):
        schema = simple_schema(observation_attributes=2)
        kg = CubeBuilder(schema, seed=0).build(5)
        builder = CubeBuilder(schema, seed=0)
        obs = builder.observation_iri(0)
        attrs = [
            o for o in kg.graph.objects(obs, builder.attribute_predicate(0))
        ]
        assert len(attrs) == 1

    def test_m_to_n_rollups(self):
        lower = LevelSpec("song", 10)
        upper = LevelSpec("genre", 5, parents_per_member=3)
        schema = CubeSchema(
            "mn",
            (DimensionSpec("genre", (HierarchySpec("g", (lower, upper)),)),),
            (MeasureSpec("m"),),
            namespace="http://example.org/mn/",
        )
        kg = CubeBuilder(schema, seed=0).build(5)
        builder = CubeBuilder(schema, seed=0)
        rollup = builder.rollup_predicate("in_genre")
        fans = [len(list(kg.graph.objects(m.iri, rollup)))
                for m in kg.members_of("genre", "song")]
        assert all(fan == 3 for fan in fans)

    def test_sample_member_deterministic(self, kg):
        import random

        a = kg.sample_member(random.Random(5))
        b = kg.sample_member(random.Random(5))
        assert a == b

    def test_describe_includes_sizes(self, kg):
        stats = kg.describe()
        assert stats["observations"] == 50
        assert stats["triples"] == len(kg.graph)

    def test_negative_observations_rejected(self):
        with pytest.raises(SchemaError):
            CubeBuilder(simple_schema()).build(-1)
