"""Property-based tests (hypothesis) for the RDF term model and serializers."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import (
    IRI,
    Literal,
    Triple,
    literal_from_python,
    parse_ntriples,
    serialize_ntriples,
)
from repro.rdf.ntriples import parse_term

# -- strategies -------------------------------------------------------------

iri_local = st.text(alphabet=string.ascii_letters + string.digits + "_-.", min_size=1, max_size=20)
iris = iri_local.map(lambda s: IRI("http://example.org/" + s))

literal_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    max_size=40,
)
plain_literals = literal_text.map(Literal)
typed_literals = st.one_of(
    st.integers(min_value=-(10**12), max_value=10**12).map(literal_from_python),
    st.floats(allow_nan=False, allow_infinity=False, width=32).map(literal_from_python),
    st.booleans().map(literal_from_python),
    plain_literals,
    st.tuples(literal_text, st.sampled_from(["en", "de", "fr-be"])).map(
        lambda pair: Literal(pair[0], language=pair[1])
    ),
)

nodes = st.one_of(iris, typed_literals)
triples = st.builds(Triple, iris, iris, nodes)


class TestTermProperties:
    @given(typed_literals)
    def test_literal_n3_roundtrip(self, literal):
        """Any literal's N-Triples rendering parses back to an equal term."""
        parsed, rest = parse_term(literal.n3())
        assert rest == ""
        assert parsed == literal

    @given(iris)
    def test_iri_n3_roundtrip(self, iri):
        parsed, rest = parse_term(iri.n3())
        assert rest == ""
        assert parsed == iri

    @given(st.integers(min_value=-(10**15), max_value=10**15))
    def test_int_roundtrip_through_literal(self, value):
        assert literal_from_python(value).to_python() == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_roundtrip_through_literal(self, value):
        assert literal_from_python(value).to_python() == value

    @given(st.lists(nodes, min_size=2, max_size=8))
    def test_sort_key_total_order(self, terms):
        """sort_key induces a consistent total order over mixed terms."""
        ordered = sorted(terms)
        for left, right in zip(ordered, ordered[1:]):
            assert left.sort_key() <= right.sort_key()
        assert sorted(ordered) == ordered  # idempotent

    @given(typed_literals, typed_literals)
    def test_equality_consistent_with_hash(self, a, b):
        if a == b:
            assert hash(a) == hash(b)


class TestSerializationProperties:
    @settings(max_examples=50)
    @given(st.lists(triples, max_size=20))
    def test_ntriples_roundtrip(self, items):
        document = serialize_ntriples(items)
        parsed = list(parse_ntriples(document))
        assert parsed == items

    @settings(max_examples=50)
    @given(st.sets(triples, max_size=20))
    def test_graph_roundtrip_preserves_set(self, items):
        from repro.store import Graph

        graph = Graph(triples=items)
        assert len(graph) == len(items)
        restored = Graph.from_ntriples(graph.to_ntriples())
        assert {t for t in restored} == set(items)
