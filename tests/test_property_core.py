"""Property-based tests of the paper's core invariants over random cubes.

For randomly shaped mini-cubes (random level sizes, hierarchy depths,
observation counts, seeds), the algorithmic guarantees of Sections 5-6
must hold unconditionally:

* every synthesized query is non-empty and contains the example;
* synthesized queries group at exactly the matched levels (minimality);
* every refinement's results still contain the example;
* Disaggregate adds exactly one grouping dimension.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Disaggregate,
    Percentile,
    SimilaritySearch,
    TopK,
    VirtualSchemaGraph,
    reolap,
)
from repro.qb import (
    CubeBuilder,
    CubeSchema,
    DimensionSpec,
    HierarchySpec,
    LevelSpec,
    MeasureSpec,
    OBSERVATION_CLASS,
)

cube_shapes = st.fixed_dictionaries(
    {
        "base_size": st.integers(min_value=2, max_value=6),
        "upper_size": st.integers(min_value=2, max_value=3),
        "second_dim_size": st.integers(min_value=2, max_value=5),
        "n_observations": st.integers(min_value=10, max_value=80),
        "seed": st.integers(min_value=0, max_value=10_000),
        "shared_pool": st.booleans(),
    }
)


def build_stack(shape):
    base = LevelSpec("base", shape["base_size"],
                     pool="shared" if shape["shared_pool"] else None)
    upper = LevelSpec("upper", shape["upper_size"])
    other = LevelSpec("other", shape["second_dim_size"],
                      pool="shared" if shape["shared_pool"] else None)
    if shape["shared_pool"] and shape["second_dim_size"] != shape["base_size"]:
        # Shared pools must agree on size; align them.
        other = LevelSpec("other", shape["base_size"], pool="shared")
    schema = CubeSchema(
        "prop",
        (
            DimensionSpec("alpha", (HierarchySpec("a", (base, upper)),)),
            DimensionSpec("beta", (HierarchySpec("b", (other,)),)),
        ),
        (MeasureSpec("m", low=0, high=50),),
        namespace="http://example.org/prop/",
    )
    kg = CubeBuilder(schema, seed=shape["seed"]).build(shape["n_observations"])
    endpoint = kg.endpoint()
    vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
    return kg, endpoint, vgraph


@settings(max_examples=15, deadline=None)
@given(cube_shapes)
def test_synthesis_invariants_hold_for_random_cubes(shape):
    kg, endpoint, vgraph = build_stack(shape)
    # Take an observed base member of the alpha dimension.
    base_level = next(l for l in vgraph.base_levels()
                      if l.dimension_predicate.local_name() == "alpha")
    member_iri = base_level.sample_members[0]
    label = next(
        m.label for m in kg.members_of("alpha", "base") if m.iri == member_iri
    )
    queries = reolap(endpoint, vgraph, (label,))
    assert queries  # completeness: a matched member always yields a query
    for query in queries:
        results = endpoint.select(query.to_select())
        assert len(results) > 0  # correctness: non-empty
        assert query.anchor_row_indexes(results)  # containment
        # Minimality: one grouping dimension for a one-value example.
        assert len(query.dimensions) == 1


@settings(max_examples=15, deadline=None)
@given(cube_shapes)
def test_refinement_invariants_hold_for_random_cubes(shape):
    kg, endpoint, vgraph = build_stack(shape)
    base_level = next(l for l in vgraph.base_levels()
                      if l.dimension_predicate.local_name() == "alpha")
    member_iri = base_level.sample_members[0]
    label = next(
        m.label for m in kg.members_of("alpha", "base") if m.iri == member_iri
    )
    (query, *_rest) = reolap(endpoint, vgraph, (label,))
    results = endpoint.select(query.to_select())

    for refinement in Disaggregate(vgraph).propose(query, results):
        assert len(refinement.query.dimensions) == len(query.dimensions) + 1
        refined = endpoint.select(refinement.query.to_select())
        assert refinement.query.anchor_row_indexes(refined)

    for method in (TopK(), Percentile(), SimilaritySearch(k=2)):
        for refinement in method.propose(query, results):
            refined = endpoint.select(refinement.query.to_select())
            assert refinement.query.anchor_row_indexes(refined), (
                f"{method.name} lost the example"
            )
            assert len(refined) <= len(results)
