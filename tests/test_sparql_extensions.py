"""Tests for the extended SPARQL features: closures, BIND, EXISTS, MINUS."""

import pytest

from repro.errors import QueryEvaluationError
from repro.rdf import IRI, Literal, Triple, literal_from_python
from repro.sparql import Evaluator, evaluate_query, parse_query
from repro.sparql.ast import OneOrMorePath, ZeroOrMorePath
from repro.store import Graph

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


@pytest.fixture
def tree_graph():
    """A small genre tree with a cycle: a -> b -> c -> d, e -> e."""
    g = Graph()
    edges = [("a", "b"), ("b", "c"), ("c", "d"), ("e", "e")]
    for child, parent in edges:
        g.add(Triple(iri(child), iri("broader"), iri(parent)))
    for name in "abcde":
        g.add(Triple(iri(name), iri("label"), Literal(name)))
        g.add(Triple(iri(name), iri("size"), literal_from_python(ord(name))))
    return g


class TestClosurePaths:
    def test_one_or_more_forward(self, tree_graph):
        rs = evaluate_query(
            tree_graph, f"SELECT ?x WHERE {{ <{EX}a> <{EX}broader>+ ?x }}"
        )
        assert {row[0] for row in rs} == {iri("b"), iri("c"), iri("d")}

    def test_zero_or_more_includes_start(self, tree_graph):
        rs = evaluate_query(
            tree_graph, f"SELECT ?x WHERE {{ <{EX}a> <{EX}broader>* ?x }}"
        )
        assert {row[0] for row in rs} == {iri("a"), iri("b"), iri("c"), iri("d")}

    def test_closure_bound_object(self, tree_graph):
        rs = evaluate_query(
            tree_graph, f"SELECT ?x WHERE {{ ?x <{EX}broader>+ <{EX}d> }}"
        )
        assert {row[0] for row in rs} == {iri("a"), iri("b"), iri("c")}

    def test_self_loop_terminates(self, tree_graph):
        rs = evaluate_query(
            tree_graph, f"SELECT ?x WHERE {{ <{EX}e> <{EX}broader>+ ?x }}"
        )
        assert {row[0] for row in rs} == {iri("e")}

    def test_closure_both_ends_free(self, tree_graph):
        rs = evaluate_query(
            tree_graph, f"SELECT ?x ?y WHERE {{ ?x <{EX}broader>+ ?y }}"
        )
        pairs = set(rs.rows)
        assert (iri("a"), iri("d")) in pairs
        assert (iri("b"), iri("d")) in pairs

    def test_closure_inside_sequence(self, tree_graph):
        rs = evaluate_query(
            tree_graph,
            f"SELECT ?l WHERE {{ <{EX}a> <{EX}broader>+ / <{EX}label> ?l }}",
        )
        assert {row[0].lexical for row in rs} == {"b", "c", "d"}

    def test_closure_roundtrips_through_parser(self):
        q = parse_query(f"SELECT ?x WHERE {{ <{EX}a> <{EX}p>+ ?x . ?x <{EX}q>* ?y . }}")
        patterns = q.where.triple_patterns()
        assert isinstance(patterns[0].p, OneOrMorePath)
        assert isinstance(patterns[1].p, ZeroOrMorePath)
        assert parse_query(q.to_sparql()).to_sparql() == q.to_sparql()

    def test_plus_sign_on_numbers_still_works(self, tree_graph):
        rs = evaluate_query(
            tree_graph,
            f"SELECT ?x WHERE {{ ?x <{EX}size> ?v . FILTER(?v = +{ord('a')}) }}",
        )
        assert rs.rows == [(iri("a"),)]


class TestBind:
    def test_bind_computes_value(self, tree_graph):
        rs = evaluate_query(
            tree_graph,
            f"SELECT ?x ?double WHERE {{ ?x <{EX}size> ?v . BIND(?v * 2 AS ?double) }}",
        )
        for row in rs:
            pass
        values = {row[0]: row[1].to_python() for row in rs}
        assert values[iri("a")] == 2 * ord("a")

    def test_bind_error_leaves_unbound(self, tree_graph):
        rs = evaluate_query(
            tree_graph,
            f"SELECT ?x ?bad WHERE {{ ?x <{EX}label> ?l . BIND(?l * 2 AS ?bad) }}",
        )
        assert len(rs) == 5
        assert all(row[1] is None for row in rs)

    def test_bind_rebinding_rejected(self, tree_graph):
        with pytest.raises(QueryEvaluationError):
            evaluate_query(
                tree_graph,
                f"SELECT ?v WHERE {{ ?x <{EX}size> ?v . BIND(1 AS ?v) }}",
            )

    def test_bind_usable_in_projection_and_order(self, tree_graph):
        rs = evaluate_query(
            tree_graph,
            f"SELECT ?neg WHERE {{ ?x <{EX}size> ?v . BIND(0 - ?v AS ?neg) }} "
            f"ORDER BY ?neg LIMIT 1",
        )
        assert rs.rows[0][0].to_python() == -ord("e")


class TestExists:
    def test_filter_exists(self, tree_graph):
        rs = evaluate_query(
            tree_graph,
            f"SELECT ?x WHERE {{ ?x <{EX}label> ?l . "
            f"FILTER EXISTS {{ ?x <{EX}broader> <{EX}c> }} }}",
        )
        assert {row[0] for row in rs} == {iri("b")}

    def test_filter_not_exists(self, tree_graph):
        rs = evaluate_query(
            tree_graph,
            f"SELECT ?x WHERE {{ ?x <{EX}label> ?l . "
            f"FILTER NOT EXISTS {{ ?x <{EX}broader> ?p }} }}",
        )
        assert {row[0] for row in rs} == {iri("d")}

    def test_exists_roundtrip(self):
        q = parse_query(
            f"SELECT ?x WHERE {{ ?x <{EX}p> ?y . FILTER NOT EXISTS {{ ?x <{EX}q> ?z . }} }}"
        )
        assert parse_query(q.to_sparql()).to_sparql() == q.to_sparql()


class TestMinus:
    def test_minus_removes_compatible(self, tree_graph):
        rs = evaluate_query(
            tree_graph,
            f"SELECT ?x WHERE {{ ?x <{EX}label> ?l . "
            f"MINUS {{ ?x <{EX}broader> <{EX}c> }} }}",
        )
        assert {row[0] for row in rs} == {iri("a"), iri("c"), iri("d"), iri("e")}

    def test_minus_without_shared_vars_keeps_all(self, tree_graph):
        rs = evaluate_query(
            tree_graph,
            f"SELECT ?x WHERE {{ ?x <{EX}label> ?l . "
            f"MINUS {{ ?unrelated <{EX}broader> <{EX}c> }} }}",
        )
        assert len(rs) == 5

    def test_minus_roundtrip(self):
        q = parse_query(
            f"SELECT ?x WHERE {{ ?x <{EX}p> ?y . MINUS {{ ?x <{EX}q> ?z . }} }}"
        )
        assert parse_query(q.to_sparql()).to_sparql() == q.to_sparql()


class TestGroupConcat:
    def test_group_concat(self, tree_graph):
        rs = evaluate_query(
            tree_graph,
            f"SELECT (GROUP_CONCAT(?l) AS ?all) WHERE {{ ?x <{EX}label> ?l }}",
        )
        (row,) = rs.rows
        assert sorted(row[0].lexical.split()) == ["a", "b", "c", "d", "e"]

    def test_group_concat_distinct(self, tree_graph):
        rs = evaluate_query(
            tree_graph,
            f"SELECT (GROUP_CONCAT(DISTINCT ?p) AS ?preds) WHERE {{ ?x ?p ?y }}",
        )
        (row,) = rs.rows
        assert len(row[0].lexical.split()) == 3  # broader, label, size
