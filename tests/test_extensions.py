"""Tests for the future-work extensions: labels, ranking, negatives, contrast."""

import pytest

from repro.core import (
    LabelResolver,
    contrast,
    labeled_results,
    rank_queries,
    rank_refinements,
    reolap,
    reolap_with_negatives,
)
from repro.errors import SynthesisError
from repro.rdf import IRI, Literal

MINI = "http://example.org/mini/"


class TestLabels:
    def test_resolver_prefers_rdfs_label(self, mini_endpoint, mini_kg):
        member = mini_kg.members_of("origin", "country")[0]
        resolver = LabelResolver(mini_endpoint)
        assert resolver.label(member.iri) == member.label

    def test_resolver_caches(self, mini_endpoint, mini_kg):
        member = mini_kg.members_of("origin", "country")[0]
        resolver = LabelResolver(mini_endpoint)
        resolver.label(member.iri)
        before = mini_endpoint.stats.select_queries
        resolver.label(member.iri)
        assert mini_endpoint.stats.select_queries == before

    def test_resolver_fallbacks(self, mini_endpoint):
        resolver = LabelResolver(mini_endpoint)
        assert resolver.label(IRI("urn:unknown/thing")) == "thing"
        assert resolver.label(None) == ""
        assert resolver.label(Literal("already text")) == "already text"

    def test_labeled_results(self, mini_endpoint, mini_vgraph):
        (query, *_others) = reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"))
        raw = mini_endpoint.select(query.to_select())
        pretty = labeled_results(mini_endpoint, raw)
        assert len(pretty) == len(raw)
        labels = {value.lexical for row in pretty.rows for value in row}
        assert {"Germany", "France", "Syria", "China"} & labels


class TestRanking:
    def test_rank_queries_prefers_fewer_members(self, mini_endpoint, mini_vgraph):
        # "Europe" groups at continent (2 members); "Germany" at country (4).
        continental = reolap(mini_endpoint, mini_vgraph, ("Europe",))
        national = reolap(mini_endpoint, mini_vgraph, ("Germany",))
        ranked = rank_queries(continental + national)
        assert ranked[0].item.dimensions[0].level.member_count == 2
        assert ranked[0].score >= ranked[-1].score
        assert "members" in ranked[0].reason

    def test_rank_refinements_orders_and_explains(self, mini_endpoint, mini_vgraph):
        from repro.core import ExplorationSession

        session = ExplorationSession(mini_endpoint, mini_vgraph)
        session.synthesize("Germany", "2014")
        session.choose(0)
        proposals = []
        for kind in session.refinement_kinds():
            proposals.extend(session.refinements(kind))
        ranked = rank_refinements(proposals, session.results)
        assert len(ranked) == len(proposals)
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)
        assert all(r.reason for r in ranked)


class TestNegativeExamples:
    def test_negative_adds_exclusion_filter(self, mini_endpoint, mini_vgraph, mini_kg):
        queries = reolap_with_negatives(
            mini_endpoint, mini_vgraph, ("Germany", "2014"), negatives=("France",)
        )
        assert queries
        france = {
            m.iri for m in mini_kg.members_of("origin", "country") if m.label == "France"
        }
        for query in queries:
            results = mini_endpoint.select(query.to_select())
            for row in results.rows:
                assert not (set(row) & france), query.description
            # The positive example must survive the exclusion.
            assert query.anchor_row_indexes(results)

    def test_negated_anchor_drops_candidate(self, mini_endpoint, mini_vgraph):
        # Excluding the very member the user exemplified removes all
        # candidates anchored on it.
        queries = reolap_with_negatives(
            mini_endpoint, mini_vgraph, ("Germany",), negatives=("Germany",)
        )
        assert queries == []

    def test_unmatched_negative_raises(self, mini_endpoint, mini_vgraph):
        with pytest.raises(SynthesisError):
            reolap_with_negatives(
                mini_endpoint, mini_vgraph, ("Germany",), negatives=("Atlantis",)
            )

    def test_description_mentions_exclusion(self, mini_endpoint, mini_vgraph):
        queries = reolap_with_negatives(
            mini_endpoint, mini_vgraph, ("Germany",), negatives=("France",)
        )
        assert all("excluding" in q.description for q in queries)

    def test_no_negatives_is_passthrough(self, mini_endpoint, mini_vgraph):
        plain = reolap(mini_endpoint, mini_vgraph, ("2014",))
        extended = reolap_with_negatives(mini_endpoint, mini_vgraph, ("2014",))
        assert [q.sparql() for q in plain] == [q.sparql() for q in extended]


class TestContrast:
    def test_contrast_two_countries(self, mini_endpoint, mini_vgraph):
        results = contrast(mini_endpoint, mini_vgraph, ("Germany",), ("France",))
        assert results
        comparison = results[0]
        assert len(comparison.side_a) > 0
        assert len(comparison.side_b) > 0
        assert "sum_num_applicants" in comparison.totals
        a, b = comparison.totals["sum_num_applicants"]
        assert comparison.delta("sum_num_applicants") == a - b

    def test_sides_are_disjoint_slices(self, mini_endpoint, mini_vgraph):
        results = contrast(mini_endpoint, mini_vgraph, ("Germany",), ("France",))
        for comparison in results:
            rows_a = set(comparison.side_a.rows)
            rows_b = set(comparison.side_b.rows)
            assert not rows_a & rows_b

    def test_incompatible_examples_raise(self, mini_endpoint, mini_vgraph):
        # A year and a country admit no shared single-dimension signature.
        with pytest.raises(SynthesisError):
            contrast(mini_endpoint, mini_vgraph, ("2014",), ("Germany",))

    def test_pretty_renders(self, mini_endpoint, mini_vgraph):
        (comparison, *_rest) = contrast(
            mini_endpoint, mini_vgraph, ("Germany",), ("France",)
        )
        text = comparison.pretty()
        assert "side A" in text and "delta" in text
