"""Tests for the ExRef refinement operators (Section 6, Problems 2a-2c)."""

import pytest

from repro.core import (
    Disaggregate,
    Percentile,
    SimilaritySearch,
    TopK,
    reolap,
)
from repro.rdf import IRI, Literal

MINI = "http://example.org/mini/"


def prop(name):
    return IRI(MINI + "prop/" + name)


@pytest.fixture()
def chosen(mini_endpoint, mini_vgraph):
    """The destination-country x year query for ("Germany", "2014")."""
    queries = reolap(mini_endpoint, mini_vgraph, ("Germany", "2014"))
    by_dims = {
        frozenset(d.level.dimension_predicate for d in q.dimensions): q for q in queries
    }
    query = by_dims[frozenset({prop("country_of_destination"), prop("ref_period")})]
    results = mini_endpoint.select(query.to_select())
    return query, results


class TestDisaggregate:
    def test_adds_exactly_one_dimension(self, mini_vgraph, chosen):
        query, results = chosen
        for refinement in Disaggregate(mini_vgraph).propose(query, results):
            assert len(refinement.query.dimensions) == len(query.dimensions) + 1

    def test_candidates_are_valid_levels(self, mini_vgraph, chosen):
        query, _results = chosen
        proposals = Disaggregate(mini_vgraph).propose(query)
        new_paths = {p.query.dimensions[-1].level.path for p in proposals}
        # origin country, origin continent are new dims; destination
        # continent would aggregate higher -> excluded; year already there.
        assert (prop("country_of_origin"),) in new_paths
        assert (prop("country_of_origin"), prop("in_continent")) in new_paths
        assert (prop("country_of_destination"), prop("in_continent")) not in new_paths
        assert (prop("ref_period"),) not in new_paths

    def test_refined_results_contain_example(self, mini_endpoint, mini_vgraph, chosen):
        query, results = chosen
        for refinement in Disaggregate(mini_vgraph).propose(query, results):
            refined = mini_endpoint.select(refinement.query.to_select())
            assert refinement.query.anchor_row_indexes(refined), refinement.explanation

    def test_structural_without_endpoint(self, mini_vgraph, chosen):
        query, _results = chosen
        # Results are optional: the operator never queries the store.
        assert Disaggregate(mini_vgraph).propose(query, None)

    def test_drilldown_within_dimension(self, eurostat_endpoint, eurostat_vgraph):
        # A query grouped by year admits month (finer in same dimension).
        queries = reolap(eurostat_endpoint, eurostat_vgraph, ("2010",))
        year_query = next(
            q for q in queries if q.dimensions[0].level.terminal_predicate.local_name() == "in_year"
        )
        proposals = Disaggregate(eurostat_vgraph).propose(year_query)
        added = {p.query.dimensions[-1].level.path for p in proposals}
        month_path = (year_query.dimensions[0].level.path[0],)
        assert month_path in added


class TestTopK:
    def test_two_directions_per_aggregate(self, chosen):
        query, results = chosen
        proposals = TopK().propose(query, results)
        # 1 measure x 4 aggregates x 2 directions, minus unseparable ties.
        assert 1 <= len(proposals) <= 8
        kinds = {p.kind for p in proposals}
        assert kinds == {"topk"}

    def test_refined_is_smaller_and_anchored(self, mini_endpoint, chosen):
        query, results = chosen
        for refinement in TopK().propose(query, results):
            refined = mini_endpoint.select(refinement.query.to_select())
            assert 0 < len(refined) < len(results), refinement.explanation
            assert refinement.query.anchor_row_indexes(refined)

    def test_having_thresholds_added(self, chosen):
        query, results = chosen
        for refinement in TopK().propose(query, results):
            assert len(refinement.query.having) == len(query.having) + 1

    def test_no_proposals_without_anchor_rows(self, chosen, mini_vgraph):
        query, results = chosen
        # Replace anchors with a member that never appears in results.
        from repro.core import Anchor

        ghost = Anchor(
            level=query.dimensions[0].level,
            member=IRI(MINI + "member/country/999"),
            keyword="ghost",
        )
        orphan = query.with_anchors((ghost,))
        assert TopK().propose(orphan, results) == []

    def test_single_row_yields_nothing(self, mini_endpoint, chosen):
        query, results = chosen
        single = type(results)(results.variables, results.rows[:1])
        assert TopK().propose(query, single) == []


class TestPercentile:
    def test_bands_anchored_and_smaller(self, mini_endpoint, chosen):
        query, results = chosen
        proposals = Percentile().propose(query, results)
        assert proposals
        for refinement in proposals:
            refined = mini_endpoint.select(refinement.query.to_select())
            assert 0 < len(refined) < len(results), refinement.explanation
            assert refinement.query.anchor_row_indexes(refined)

    def test_variable_proposal_count(self, chosen):
        query, results = chosen
        few = Percentile(cuts=(50,)).propose(query, results)
        many = Percentile(cuts=(10, 25, 50, 75, 90)).propose(query, results)
        assert len(few) <= len(many)

    def test_invalid_cuts_rejected(self):
        with pytest.raises(ValueError):
            Percentile(cuts=(0,))
        with pytest.raises(ValueError):
            Percentile(cuts=(100,))

    def test_explanations_name_percentiles(self, chosen):
        query, results = chosen
        for refinement in Percentile().propose(query, results):
            assert "percentile" in refinement.explanation


class TestSimilaritySearch:
    def test_scalar_fallback_without_added_dims(self, mini_endpoint, chosen):
        query, results = chosen
        proposals = SimilaritySearch(k=2).propose(query, results)
        # One proposal per (measure, aggregate): fixed count (Fig. 9b).
        assert len(proposals) == 4
        for refinement in proposals:
            refined = mini_endpoint.select(refinement.query.to_select())
            assert refinement.query.anchor_row_indexes(refined)
            assert len(refined) <= len(results)

    def test_feature_vectors_after_disaggregation(self, mini_endpoint, mini_vgraph, chosen):
        query, results = chosen
        (dis, *_rest) = [
            r for r in Disaggregate(mini_vgraph).propose(query)
            if r.query.dimensions[-1].level.path == (prop("country_of_origin"),)
        ]
        dis_results = mini_endpoint.select(dis.query.to_select())
        proposals = SimilaritySearch(k=2).propose(dis.query, dis_results)
        assert len(proposals) == 4
        refined = mini_endpoint.select(proposals[0].query.to_select())
        # Restricted to anchor + k combos over (dest country x year).
        anchored_vars = sorted(dis.query.anchored_variables(), key=lambda v: v.name)
        combos = {
            tuple(row[refined.index_of(v)] for v in anchored_vars) for row in refined
        }
        assert 1 <= len(combos) <= 3

    def test_k_validation(self):
        with pytest.raises(ValueError):
            SimilaritySearch(k=0)

    def test_figure5_cosine_semantics(self):
        """Reproduce Figure 5: Sweden/Syria and France/China are top-2."""
        import numpy as np
        from repro.core.refine.similarity import _similarity

        anchor = np.array([0.3, 0.6])  # Germany, Syria
        candidates = {
            "France,Syria": np.array([0.3, 0.3]),
            "Sweden,Syria": np.array([0.2, 0.4]),
            "Germany,China": np.array([0.1, 0.1]),
            "France,China": np.array([0.1, 0.3]),
            "Sweden,China": np.array([0.3, 0.2]),
        }
        ranked = sorted(
            candidates, key=lambda name: -_similarity(anchor, candidates[name])
        )
        assert set(ranked[:2]) == {"Sweden,Syria", "France,China"}

    def test_no_anchor_in_results_yields_nothing(self, chosen):
        query, results = chosen
        from repro.core import Anchor

        ghost = Anchor(
            level=query.dimensions[0].level,
            member=IRI(MINI + "member/country/999"),
            keyword="ghost",
        )
        orphan = query.with_anchors((ghost,))
        assert SimilaritySearch().propose(orphan, results) == []
