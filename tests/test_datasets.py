"""Tests for the three schema-faithful dataset generators (Table 3)."""

import pytest

from repro.datasets import (
    dbpedia_schema,
    eurostat_schema,
    generate_dbpedia,
    generate_eurostat,
    generate_production,
    production_schema,
    scaled,
)
from repro.qb import LABEL, OBSERVATION_CLASS, TYPE
from repro.rdf import Literal


class TestScaled:
    def test_identity_at_one(self):
        assert scaled(100, 1.0) == 100

    def test_rounds_up(self):
        assert scaled(10, 0.25) == 3

    def test_floor(self):
        assert scaled(10, 0.0001) == 2
        assert scaled(10, 0.0001, minimum=1) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaled(10, 0)


class TestEurostatSchema:
    def test_table3_characteristics(self):
        stats = eurostat_schema(scale=1.0).describe()
        # Paper Table 3: |M|=1, |L|=9, |N_D|=373 (D/H conventions differ;
        # see schema module docstring).
        assert stats["M"] == 1
        assert stats["L"] == 9
        assert stats["N_D"] == 373
        assert stats["D"] == 5
        assert stats["H"] == 6

    def test_scaled_down_is_consistent(self):
        schema = eurostat_schema(scale=0.1)
        assert schema.n_levels == 9
        assert schema.n_members < 100


class TestProductionSchema:
    def test_table3_characteristics(self):
        stats = production_schema(scale=1.0).describe()
        assert stats["D"] == 7
        assert stats["M"] == 1
        assert stats["L"] == 9
        assert stats["N_D"] == 6444

    def test_scaled(self):
        assert production_schema(scale=0.01).n_members < 300


class TestDBpediaSchema:
    def test_table3_characteristics(self):
        stats = dbpedia_schema(scale=1.0).describe()
        assert stats["D"] == 5
        assert stats["M"] == 1
        assert stats["H"] == 14
        assert stats["L"] == 23
        assert stats["N_D"] == 87160

    def test_m_to_n_levels_present(self):
        schema = dbpedia_schema(scale=0.05)
        fans = [
            level.parents_per_member
            for dim in schema.dimensions
            for _, level in dim.levels()
        ]
        assert max(fans) >= 2


class TestGeneration:
    def test_eurostat_generation(self):
        kg = generate_eurostat(n_observations=100, scale=0.1, seed=1)
        assert kg.n_observations == 100
        assert kg.graph.count(None, TYPE, OBSERVATION_CLASS) == 100
        # Germany must be findable by label (the running example).
        assert any(
            kg.graph.value(m.iri, LABEL, None) == Literal("Germany")
            for m in kg.members_of("destination", "country")
        )

    def test_eurostat_shared_country_pool(self):
        kg = generate_eurostat(n_observations=10, scale=0.1)
        origin = {m.iri for m in kg.members_of("citizen", "country")}
        dest = {m.iri for m in kg.members_of("destination", "country")}
        assert origin == dest

    def test_eurostat_has_month_year_hierarchy(self):
        kg = generate_eurostat(n_observations=10, scale=0.1)
        months = kg.members_of("ref_period", "month")
        years = kg.members_of("ref_period", "year")
        assert months and years
        assert months[0].label.split()[-1].isdigit()

    def test_production_generation(self):
        kg = generate_production(n_observations=50, scale=0.01, seed=2)
        assert kg.n_observations == 50
        assert kg.members_of("producer", "country") == kg.members_of("consumer", "country")

    def test_dbpedia_generation_m_to_n(self):
        kg = generate_dbpedia(n_observations=50, scale=0.02, seed=3)
        # genre -> supergenre must be M-to-N (2 parents per genre).
        from repro.qb import CubeBuilder

        builder = CubeBuilder(kg.schema)
        rollup = builder.rollup_predicate("sub_genre_of")
        fans = [
            len(list(kg.graph.objects(m.iri, rollup)))
            for m in kg.members_of("genre", "genre")
        ]
        assert max(fans) >= 2

    def test_generation_deterministic(self):
        a = generate_eurostat(n_observations=30, scale=0.1, seed=9)
        b = generate_eurostat(n_observations=30, scale=0.1, seed=9)
        assert sorted(a.graph.triples()) == sorted(b.graph.triples())

    def test_eurostat_triple_density_exceeds_production(self):
        # Fig. 6: Eurostat has ~2x the triples of Production at equal
        # observation counts (richer observation attributes).
        eurostat = generate_eurostat(n_observations=200, scale=0.05)
        production = generate_production(n_observations=200, scale=0.005)
        eurostat_per_obs = len(eurostat.graph) / 200
        production_per_obs = len(production.graph) / 200
        assert eurostat_per_obs > production_per_obs
