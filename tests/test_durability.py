"""Durability suite: WAL framing, crash recovery, atomic snapshots.

The contract under test (see ``repro/store/durable.py``): after a crash
at *any* instant — mid-WAL-record, mid-fsync, mid-snapshot-save —
reopening the directory recovers a verified-consistent store equal to
applying some prefix of the submitted operations that contains every
acknowledged one.  The Hypothesis property at the bottom proves the
exact-prefix shape by cutting the log at every record boundary and at
points inside records; the fault-injection tests prove the same through
the :class:`~repro.resilience.FaultyFS` shim instead of scissors.
"""

from __future__ import annotations

import io
import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SnapshotError, WALError
from repro.rdf import IRI, Literal
from repro.rdf.triple import Triple
from repro.resilience import DiskFaultPlan, FaultyFS, SimulatedCrash
from repro.store import (
    DurableGraph,
    Graph,
    WalWriter,
    load_snapshot,
    replay_wal,
    save_snapshot,
    verify_snapshot,
)
from repro.store.snapshot import SECTION_NAMES
from repro.store.wal import OP_ADD, OP_REMOVE, list_segments, segment_path


def t(i: int, p: str = "p") -> Triple:
    return Triple(IRI(f"urn:s{i}"), IRI(f"urn:{p}"), Literal(str(i)))


def triples(graph) -> set:
    return set(graph)


# -- WAL framing and replay ------------------------------------------------


class TestWal:
    def test_roundtrip(self, tmp_path):
        wal = WalWriter(str(tmp_path), fsync=False)
        wal.append(OP_ADD, b"s1", b"p1", b"o1")
        wal.append(OP_REMOVE, b"s2", b"p2", b"o2")
        wal.sync()
        wal.close()
        records, report = replay_wal(str(tmp_path))
        assert [(r.op, r.s, r.p, r.o) for r in records] == [
            (OP_ADD, b"s1", b"p1", b"o1"),
            (OP_REMOVE, b"s2", b"p2", b"o2"),
        ]
        assert report.records == 2 and report.torn_bytes == 0

    def test_rotation_and_resume(self, tmp_path):
        # Tiny segment budget: every append rotates, so records spread
        # over many segments and replay must stitch them in seq order.
        wal = WalWriter(str(tmp_path), segment_bytes=64, fsync=False)
        for i in range(10):
            wal.append(OP_ADD, f"s{i}".encode(), b"p", b"o")
        wal.sync()
        assert wal.current_seq > 1
        wal.close()
        records, report = replay_wal(str(tmp_path))
        assert [r.s for r in records] == [f"s{i}".encode() for i in range(10)]
        # Reopen resumes the last segment rather than abandoning it.
        wal2 = WalWriter(str(tmp_path), segment_bytes=64, fsync=False)
        wal2.append(OP_ADD, b"s10", b"p", b"o")
        wal2.sync()
        wal2.close()
        records, _ = replay_wal(str(tmp_path))
        assert records[-1].s == b"s10" and len(records) == 11

    def test_torn_tail_truncated_at_every_cut(self, tmp_path):
        # Write 5 records, then replay every possible torn prefix of the
        # segment: recovery must always yield exactly the whole records
        # before the cut, and repair must leave the file appendable.
        wal = WalWriter(str(tmp_path), fsync=False)
        boundaries = [wal._position]
        for i in range(5):
            wal.append(OP_ADD, f"s{i}".encode(), b"p", b"o")
            boundaries.append(wal._position)
        wal.sync()
        wal.close()
        path = segment_path(str(tmp_path), 1)
        data = open(path, "rb").read()
        assert len(data) == boundaries[-1]
        for cut in range(len(data) + 1):
            other = tempfile.mkdtemp()
            try:
                cut_path = segment_path(other, 1)
                with open(cut_path, "wb") as handle:
                    handle.write(data[:cut])
                records, report = replay_wal(other)
                expected = sum(1 for b in boundaries[1:] if b <= cut)
                assert len(records) == expected, cut
                # A cut inside the segment header tears the whole file
                # (truncated to empty); past it, to the last whole record.
                repaired = 0 if cut < boundaries[0] else boundaries[expected]
                assert os.path.getsize(cut_path) == repaired
                if cut > 0 and cut not in boundaries:
                    assert report.torn_bytes > 0
                # After repair the writer can append cleanly.
                wal2 = WalWriter(other, fsync=False)
                wal2.append(OP_ADD, b"x", b"y", b"z")
                wal2.sync()
                wal2.close()
                records, _ = replay_wal(other)
                assert len(records) == expected + 1
            finally:
                shutil.rmtree(other)

    def test_corrupt_sealed_segment_is_an_error(self, tmp_path):
        wal = WalWriter(str(tmp_path), segment_bytes=64, fsync=False)
        for i in range(12):
            wal.append(OP_ADD, f"s{i}".encode(), b"p", b"o")
        wal.sync()
        wal.close()
        seqs = list_segments(str(tmp_path))
        assert len(seqs) >= 3
        # Flip a byte inside a *sealed* (non-final) segment.
        victim = seqs[0][1]
        blob = bytearray(open(victim, "rb").read())
        blob[-2] ^= 0xFF
        open(victim, "wb").write(bytes(blob))
        with pytest.raises(WALError, match="sealed"):
            replay_wal(str(tmp_path))

    def test_flipped_bit_in_final_segment_truncates(self, tmp_path):
        wal = WalWriter(str(tmp_path), fsync=False)
        wal.append(OP_ADD, b"s", b"p", b"o")
        wal.append(OP_ADD, b"s2", b"p2", b"o2")
        wal.sync()
        wal.close()
        path = segment_path(str(tmp_path), 1)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF  # corrupt the last record's payload
        open(path, "wb").write(bytes(blob))
        records, report = replay_wal(str(tmp_path))
        assert [r.s for r in records] == [b"s"]
        assert report.torn_bytes > 0

    def test_writer_poisons_after_io_failure(self, tmp_path):
        fs = FaultyFS(DiskFaultPlan(fail_at_byte=60))
        wal = WalWriter(str(tmp_path), fsync=False, opener=fs)
        with pytest.raises(WALError):
            for i in range(100):
                wal.append(OP_ADD, f"s{i}".encode(), b"p", b"o")
        with pytest.raises(WALError, match="poisoned"):
            wal.append(OP_ADD, b"s", b"p", b"o")
        with pytest.raises(WALError, match="poisoned"):
            wal.sync()

    def test_prune_keeps_suffix(self, tmp_path):
        wal = WalWriter(str(tmp_path), segment_bytes=64, fsync=False)
        for i in range(8):
            wal.append(OP_ADD, f"s{i}".encode(), b"p", b"o")
        wal.sync()
        current = wal.current_seq
        removed = wal.prune_before(current)
        kept = [seq for seq, _ in list_segments(str(tmp_path))]
        assert removed > 0 and kept == sorted(kept) and kept[-1] == current
        wal.close()


# -- DurableGraph lifecycle -------------------------------------------------


class TestDurableGraph:
    def test_reopen_replays_acknowledged_writes(self, tmp_path):
        d = str(tmp_path / "store")
        with DurableGraph.open(d, fsync=False) as g:
            g.add(t(1))
            g.add_all([t(2), t(3), t(4)])
            g.remove(t(3))
        g2 = DurableGraph.open(d, fsync=False)
        assert triples(g2) == {t(1), t(2), t(4)}
        assert g2.recovery.replayed_records == 5
        g2.close()

    def test_checkpoint_truncates_wal_and_bounds_replay(self, tmp_path):
        d = str(tmp_path / "store")
        g = DurableGraph.open(d, fsync=False)
        g.add_all([t(i) for i in range(20)])
        g.checkpoint()
        g.add(t(100))
        g.close()
        g2 = DurableGraph.open(d, fsync=False)
        # Only the post-checkpoint tail replays; the 20 come off the snapshot.
        assert g2.recovery.replayed_records == 1
        assert len(g2) == 21 and t(100) in g2
        g2.close()

    def test_generation_fallback_on_corrupt_newest(self, tmp_path):
        d = str(tmp_path / "store")
        g = DurableGraph.open(d, fsync=False)
        g.add_all([t(i) for i in range(10)])
        g.checkpoint()
        g.add(t(50))
        g.checkpoint()
        g.close()
        snaps = sorted(n for n in os.listdir(d) if n.endswith(".snap"))
        assert len(snaps) == 2
        with open(os.path.join(d, snaps[-1]), "r+b") as handle:
            handle.seek(300)
            handle.write(b"\xde\xad\xbe\xef")
        g2 = DurableGraph.open(d, fsync=False)
        assert g2.recovery.fell_back
        assert [os.path.basename(p) for p, _ in g2.recovery.rejected] == [snaps[-1]]
        # The older generation + retained WAL replay reach the same state.
        assert triples(g2) == {t(i) for i in range(10)} | {t(50)}
        g2.close()

    def test_all_generations_corrupt_raises(self, tmp_path):
        d = str(tmp_path / "store")
        g = DurableGraph.open(d, fsync=False)
        g.add(t(1))
        g.checkpoint()
        g.close()
        for name in os.listdir(d):
            if name.endswith(".snap"):
                with open(os.path.join(d, name), "r+b") as handle:
                    handle.seek(100)
                    handle.write(b"\x00" * 8)
        with pytest.raises(SnapshotError, match="every snapshot generation"):
            DurableGraph.open(d, fsync=False)

    def test_retention_prunes_generations_and_segments(self, tmp_path):
        d = str(tmp_path / "store")
        g = DurableGraph.open(d, fsync=False, retain=2)
        for round_no in range(5):
            g.add(t(round_no))
            g.checkpoint()
        snaps = [n for n in os.listdir(d) if n.endswith(".snap")]
        assert len(snaps) == 2
        # Retained WAL segments all have seq >= the oldest kept wal_start.
        oldest_start = min(int(n.split("-")[2].split(".")[0]) for n in snaps)
        seqs = [seq for seq, _ in list_segments(os.path.join(d, "wal"))]
        assert all(seq >= oldest_start for seq in seqs)
        g.close()

    def test_auto_checkpoint(self, tmp_path):
        d = str(tmp_path / "store")
        g = DurableGraph.open(d, fsync=False, auto_checkpoint=10)
        g.add_all([t(i) for i in range(25)])
        assert g.generation >= 1
        g.close()

    def test_closed_graph_refuses_writes(self, tmp_path):
        d = str(tmp_path / "store")
        g = DurableGraph.open(d, fsync=False)
        g.add(t(1))
        g.close()
        assert g.closed
        with pytest.raises(WALError, match="closed"):
            g.add(t(2))
        with pytest.raises(WALError, match="closed"):
            g.checkpoint()

    def test_durability_stats_shape(self, tmp_path):
        d = str(tmp_path / "store")
        g = DurableGraph.open(d, fsync=False)
        g.add_all([t(i) for i in range(5)])
        stats = g.durability_stats()
        assert stats["wal_records"] == 5
        assert stats["wal_syncs"] == 1  # one group-commit fsync for add_all
        assert stats["records_since_checkpoint"] == 5
        assert stats["recovery"]["replayed_records"] == 0
        g.checkpoint()
        assert g.durability_stats()["records_since_checkpoint"] == 0
        g.close()

    def test_open_durable_classmethod(self, tmp_path):
        d = str(tmp_path / "store")
        g = Graph.open_durable(d, fsync=False)
        assert isinstance(g, DurableGraph)
        g.add(t(1))
        g.close()
        g2 = Graph.open_durable(d, fsync=False)
        assert t(1) in g2
        g2.close()


# -- crash injection through the filesystem shim ----------------------------


class TestCrashInjection:
    def test_crash_mid_append_recovers_acknowledged_prefix(self, tmp_path):
        d = str(tmp_path / "store")
        fs = FaultyFS(DiskFaultPlan(crash_at_byte=900))
        g = DurableGraph.open(d, fsync=False, opener=fs)
        acked = 0
        with pytest.raises(SimulatedCrash):
            for i in range(500):
                g.add(t(i))
                acked += 1
        assert fs.fired == "crash_at_byte" and acked > 0
        g2 = DurableGraph.open(d, fsync=False)
        # Exact prefix: every acked write present, at most the one
        # in-flight unacked record beyond them.
        assert len(g2) in (acked, acked + 1)
        assert all(t(i) in g2 for i in range(acked))
        g2.close()

    def test_short_write_then_recovery(self, tmp_path):
        d = str(tmp_path / "store")
        fs = FaultyFS(DiskFaultPlan(short_write_at_byte=700))
        g = DurableGraph.open(d, fsync=False, opener=fs)
        acked = 0
        with pytest.raises(WALError):
            for i in range(500):
                g.add(t(i))
                acked += 1
        g2 = DurableGraph.open(d, fsync=False)
        assert g2.recovery.torn_bytes >= 0
        assert all(t(i) in g2 for i in range(acked))
        assert len(g2) in (acked, acked + 1)
        g2.close()

    def test_crash_during_checkpoint_keeps_previous_state(self, tmp_path):
        d = str(tmp_path / "store")
        g = DurableGraph.open(d, fsync=False)
        g.add_all([t(i) for i in range(30)])
        g._opener = FaultyFS(DiskFaultPlan(crash_at_fsync=1))
        with pytest.raises(SimulatedCrash):
            g.checkpoint()
        # The crash left temp debris and no completed generation.
        assert any(n.endswith(".tmp") for n in os.listdir(d))
        assert not any(n.endswith(".snap") for n in os.listdir(d))
        g2 = DurableGraph.open(d, fsync=False)
        assert triples(g2) == {t(i) for i in range(30)}
        assert not any(n.endswith(".tmp") for n in os.listdir(d))
        g2.close()

    def test_crash_mid_snapshot_body_never_replaces_old_generation(self, tmp_path):
        d = str(tmp_path / "store")
        g = DurableGraph.open(d, fsync=False)
        g.add_all([t(i) for i in range(30)])
        g.checkpoint()
        good = {n for n in os.listdir(d) if n.endswith(".snap")}
        g.add(t(99))
        g._opener = FaultyFS(DiskFaultPlan(crash_at_byte=200))
        with pytest.raises(SimulatedCrash):
            g.checkpoint()
        assert {n for n in os.listdir(d) if n.endswith(".snap")} == good
        g2 = DurableGraph.open(d, fsync=False)
        assert triples(g2) == {t(i) for i in range(30)} | {t(99)}
        g2.close()

    def test_save_failure_cleans_temp_and_raises(self, tmp_path):
        graph = Graph(triples=[t(i) for i in range(10)])
        path = str(tmp_path / "x.snap")
        fs = FaultyFS(DiskFaultPlan(fail_at_byte=100))
        with pytest.raises(SnapshotError):
            save_snapshot(graph, path, opener=fs)
        # Survivable OSError: the temp file is unlinked, nothing published.
        assert os.listdir(str(tmp_path)) == []


# -- snapshot verification --------------------------------------------------


class TestSnapshotVerify:
    def _snap(self, tmp_path, n=20):
        graph = Graph(triples=[t(i) for i in range(n)])
        path = str(tmp_path / "g.snap")
        save_snapshot(graph, path)
        return graph, path

    def test_verify_ok(self, tmp_path):
        graph, path = self._snap(tmp_path)
        report = verify_snapshot(path)
        assert report["triples"] == len(graph)
        assert [s["name"] for s in report["sections"]] == list(SECTION_NAMES)

    def test_truncation_at_many_lengths_is_always_clear(self, tmp_path):
        _, path = self._snap(tmp_path)
        data = open(path, "rb").read()
        for cut in (0, 1, 7, 16, 100, len(data) // 2, len(data) - 1):
            short = str(tmp_path / f"cut{cut}.snap")
            open(short, "wb").write(data[:cut])
            with pytest.raises(SnapshotError):
                verify_snapshot(short)
            with pytest.raises(SnapshotError):
                load_snapshot(short)

    def test_section_corruption_names_the_section(self, tmp_path):
        _, path = self._snap(tmp_path)
        report = verify_snapshot(path)
        for section in (report["sections"][0], report["sections"][-1]):
            blob = bytearray(open(path, "rb").read())
            blob[section["offset"]] ^= 0xFF
            bad = str(tmp_path / f"bad-{section['name']}.snap")
            open(bad, "wb").write(bytes(blob))
            with pytest.raises(SnapshotError, match=section["name"]):
                load_snapshot(bad)

    def test_unverified_load_skips_crc(self, tmp_path):
        # verify=False trades the integrity sweep for O(open) boot; a
        # corrupt column section then goes undetected at load time.
        _, path = self._snap(tmp_path)
        report = verify_snapshot(path)
        section = report["sections"][1]
        blob = bytearray(open(path, "rb").read())
        blob[section["offset"] + 2] ^= 0x01
        open(path, "wb").write(bytes(blob))
        load_snapshot(path, verify=False)  # no error: caller opted out
        with pytest.raises(SnapshotError, match=section["name"]):
            load_snapshot(path, verify=True)


# -- CLI surface ------------------------------------------------------------


class TestCli:
    def test_data_dir_seeds_then_recovers(self, tmp_path):
        from repro.cli import main

        d = str(tmp_path / "data")
        out = io.StringIO()
        assert main(["--data-dir", d, "--observations", "20"],
                    stdin=io.StringIO("quit\n"), stdout=out) == 0
        assert any(n.endswith(".snap") for n in os.listdir(d))
        # Second boot recovers instead of re-ingesting; same store works.
        out2 = io.StringIO()
        assert main(["--data-dir", d, "--observations", "20"],
                    stdin=io.StringIO("quit\n"), stdout=out2) == 0
        assert "ready" in out2.getvalue()

    def test_snapshot_verify_subcommand(self, tmp_path):
        from repro.cli import main

        graph = Graph(triples=[t(i) for i in range(5)])
        path = str(tmp_path / "g.snap")
        save_snapshot(graph, path)
        out = io.StringIO()
        assert main(["snapshot", "verify", path],
                    stdin=io.StringIO(""), stdout=out) == 0
        assert out.getvalue().startswith("OK")
        with open(path, "r+b") as handle:
            handle.seek(120)
            handle.write(b"\xff\xff\xff\xff")
        out2 = io.StringIO()
        assert main(["snapshot", "verify", path],
                    stdin=io.StringIO(""), stdout=out2) == 1
        assert out2.getvalue().startswith("CORRUPT")


# -- the recovery property --------------------------------------------------

small_ids = st.integers(min_value=0, max_value=5)
op_lists = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]),
              st.tuples(small_ids, small_ids, small_ids)),
    min_size=1, max_size=12,
)


def _as_triple(ids) -> Triple:
    return Triple(IRI(f"urn:s{ids[0]}"), IRI(f"urn:p{ids[1]}"), Literal(str(ids[2])))


@settings(max_examples=20, deadline=None)
@given(ops=op_lists)
def test_recovery_is_exactly_the_acknowledged_prefix(ops):
    """Cut the WAL at every record boundary and inside records: recovery
    equals the state after exactly the whole records before the cut, and
    the recovered columnar graph matches a dict-layout replica
    (three-way: dict ≡ columnar ≡ recovered)."""
    base = tempfile.mkdtemp()
    try:
        d = os.path.join(base, "store")
        g = DurableGraph.open(d, fsync=False)
        boundaries = [g.wal._position]
        states = [set()]
        expected = set()
        for op, ids in ops:
            triple = _as_triple(ids)
            if op == "add":
                g.add(triple)
                expected.add(triple)
            else:
                g.remove(triple)
                expected.discard(triple)
            boundaries.append(g.wal._position)
            states.append(set(expected))
        g.close()
        seg = segment_path(os.path.join(d, "wal"), 1)
        data = open(seg, "rb").read()
        assert len(data) == boundaries[-1]

        # Every record boundary, plus mid-record cuts: one byte into the
        # frame, mid-payload, and one byte short of completion.
        cuts = set(boundaries)
        for prev, nxt in zip(boundaries, boundaries[1:]):
            cuts.update({prev + 1, (prev + nxt) // 2, nxt - 1})
        for cut in sorted(c for c in cuts if 0 <= c <= len(data)):
            trial = os.path.join(base, f"cut{cut}")
            os.makedirs(os.path.join(trial, "wal"))
            with open(segment_path(os.path.join(trial, "wal"), 1), "wb") as h:
                h.write(data[:cut])
            recovered = DurableGraph.open(trial, fsync=False)
            k = sum(1 for b in boundaries[1:] if b <= cut)
            assert triples(recovered) == states[k], (cut, k)
            # Three-way equivalence: replay the same acknowledged prefix
            # into a dict-layout graph and compare through the facade.
            dict_graph = Graph(layout="dict")
            for op, ids in ops[:k]:
                triple = _as_triple(ids)
                dict_graph.add(triple) if op == "add" else dict_graph.remove(triple)
            assert triples(dict_graph) == triples(recovered)
            recovered.close()
            shutil.rmtree(trial)
    finally:
        shutil.rmtree(base)


@settings(max_examples=10, deadline=None)
@given(ops=op_lists, checkpoint_after=st.integers(min_value=0, max_value=12))
def test_recovery_after_checkpoint_matches_full_replay(ops, checkpoint_after):
    """A checkpoint anywhere in the sequence never changes what recovery
    returns: snapshot + WAL tail ≡ applying every operation in order."""
    base = tempfile.mkdtemp()
    try:
        d = os.path.join(base, "store")
        g = DurableGraph.open(d, fsync=False)
        expected = set()
        for index, (op, ids) in enumerate(ops):
            triple = _as_triple(ids)
            if op == "add":
                g.add(triple)
                expected.add(triple)
            else:
                g.remove(triple)
                expected.discard(triple)
            if index == checkpoint_after:
                g.checkpoint()
        g.close()
        recovered = DurableGraph.open(d, fsync=False)
        assert triples(recovered) == expected
        recovered.close()
    finally:
        shutil.rmtree(base)
