"""Chaos suite: seeded fault schedules replayed against the whole stack.

Every test here runs under a matrix of seeds (override with the
``REPRO_CHAOS_SEEDS`` environment variable, e.g. ``REPRO_CHAOS_SEEDS=0,99``)
and asserts the resilience invariants the subsystem promises:

* :meth:`ExplorationSession.step` never raises, whatever the endpoint does;
* degraded answers are explicitly flagged and a *subset* of the fault-free
  answers — partial, never wrong;
* the circuit breaker trips and recovers exactly per its state machine,
  checked against the injector's deterministic event log;
* ``try_ask_batch`` never loses or reorders verdicts, and the query cache
  stays consistent across injected timeouts;
* the serving layer sheds or errors but never returns a wrong result, and
  serve-stale mode answers from last-known-good while the breaker is open.

Marked ``chaos`` and excluded from the tier-1 run (see pyproject.toml);
CI runs it as a dedicated job.
"""

import os

import pytest

from repro.core import ExplorationSession, SynthesisReport, reolap
from repro.errors import (
    AdmissionError,
    QueryEvaluationError,
    QueryTimeoutError,
    ReproError,
    TransientError,
)
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    ResilientEndpoint,
    RetryPolicy,
    try_ask_batch,
)
from repro.serving import QueryCache, QueryService
from repro.store import Endpoint

pytestmark = pytest.mark.chaos


def _seed_matrix():
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "0,1,2,7,13")
    return [int(part) for part in raw.split(",") if part.strip()]

SEEDS = _seed_matrix()

#: The default chaotic weather: every fault kind, none dominant.
RATES = dict(timeout_rate=0.08, transient_rate=0.12, latency_rate=0.10,
             max_latency=0.0005)


def chaotic(endpoint, seed, **overrides):
    rates = dict(RATES)
    rates.update(overrides)
    return FaultInjector(endpoint, FaultPlan.random(seed, **rates))


# A fixed exploration script: synthesis, drill-down, menus, backtracking,
# plus deliberate caller errors (bad index, bad kind) mixed in.
SCRIPT = [
    ("synthesize", ("Germany", "2014"), {}),
    ("choose", (0,), {}),
    ("refinements", ("disaggregate",), {}),
    ("choose", (99,), {}),  # caller bug: must reject, not raise
    ("all_refinements", (), {}),
    ("refinements", ("rollup",), {}),
    ("refinements", ("no-such-kind",), {}),  # caller bug
    ("synthesize", ("Europe",), {}),
    ("choose", (0,), {}),
    ("back", (), {}),
    ("synthesize", ("Syria", "2013"), {}),
    ("choose", (0,), {}),
    ("refinements", ("topk",), {}),
]


class TestSessionNeverDies:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_step_never_raises(self, mini_endpoint, mini_vgraph, seed):
        injector = chaotic(mini_endpoint, seed)
        session = ExplorationSession(injector, mini_vgraph)
        for action, args, kwargs in SCRIPT:
            outcome = session.step(action, *args, **kwargs)
            assert outcome.action == action
            if not outcome.ok:
                assert outcome.error  # every rejection is explained
            if outcome.degraded:
                # A degraded step is visible in the failure log too.
                assert session.failures
        # The chaos actually happened for at least one seed-independent
        # sanity floor: the injector logged every endpoint call.
        assert injector.events

    @pytest.mark.parametrize("seed", SEEDS)
    def test_absorbed_faults_are_accounted(self, mini_endpoint, mini_vgraph, seed):
        injector = chaotic(mini_endpoint, seed, transient_rate=0.3)
        session = ExplorationSession(injector, mini_vgraph)
        outcomes = [session.step(action, *args, **kwargs)
                    for action, args, kwargs in SCRIPT]
        degraded = [outcome for outcome in outcomes if outcome.degraded]
        assert len(session.failures) >= len(
            [outcome for outcome in degraded if outcome.error]
        ) - 1  # synthesize may flag degraded without a recorded failure
        for failed in session.failures:
            assert failed.error_type  # fault accounting names the class


class TestDegradedSubset:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("example", [("Germany", "2014"), ("Europe",)])
    def test_degraded_candidates_subset_of_clean(
        self, mini_endpoint, mini_vgraph, seed, example,
    ):
        clean = {query.sparql()
                 for query in reolap(mini_endpoint, mini_vgraph, example)}
        injector = chaotic(mini_endpoint, seed, transient_rate=0.25)
        report = SynthesisReport()
        degraded = reolap(injector, mini_vgraph, example,
                          report=report, degrade=True)
        produced = {query.sparql() for query in degraded}
        assert produced <= clean  # partial, never wrong
        if produced < clean:
            assert report.degraded  # losses are explicitly flagged
        if report.degraded:
            assert injector.faults_injected() > 0


class TestBreakerTrajectory:
    # Legal prior states per event.  OPEN decays to HALF_OPEN lazily and
    # unlogged, so events admissible from half-open are also admissible
    # when the log last showed open.
    LEGAL = {
        "trip": {CLOSED},
        "reopen": {HALF_OPEN, OPEN},
        "probe": {HALF_OPEN, OPEN},
        "close": {HALF_OPEN, OPEN},
        "reject": {OPEN, HALF_OPEN},
    }

    @pytest.mark.parametrize("seed", SEEDS)
    def test_outage_trips_then_recovers(self, mini_endpoint, seed):
        clock_now = [0.0]
        breaker = CircuitBreaker(failure_rate=0.5, window=8, min_calls=4,
                                 recovery_timeout=5.0,
                                 clock=lambda: clock_now[0])
        # Only calls that reach the injector advance the schedule index, so
        # the outage window must be short enough for half-open probes to
        # get past it: trip lands around call 13, probes arrive one per
        # recovery period, and call 20 is the first healthy one again.
        injector = FaultInjector(
            mini_endpoint,
            FaultPlan.random(seed, transient_rate=0.05, outages=[(10, 20)]),
        )
        guarded = ResilientEndpoint(injector, breaker=breaker,
                                    sleep=lambda _s: None)
        ask = "ASK { ?s ?p ?o }"
        for _ in range(40):
            try:
                guarded.ask(ask)
            except ReproError:
                pass
            clock_now[0] += 1.0
        assert breaker.stats.trips >= 1  # the outage tripped it
        # Past the outage the endpoint is mostly healthy again; a stray
        # random transient may still hit a probe, so allow several rounds.
        recovered = False
        for _ in range(10):
            clock_now[0] += 10.0
            try:
                recovered = guarded.ask(ask) is True
                break
            except ReproError:
                continue
        assert recovered  # the breaker re-admitted traffic after the outage
        assert breaker.state == CLOSED
        # Replay the event log against the state-machine edges.
        state = CLOSED
        for event in breaker.events:
            assert state in self.LEGAL[event.transition], (
                f"illegal {event.transition} from {state}"
            )
            state = event.state
        assert state == CLOSED
        # Determinism: the same seed produces the same injected schedule.
        replay = FaultInjector(
            mini_endpoint,
            FaultPlan.random(seed, transient_rate=0.05, outages=[(10, 20)]),
        )
        replayed = ResilientEndpoint(replay, breaker=CircuitBreaker(
            failure_rate=0.5, window=8, min_calls=4, recovery_timeout=5.0,
            clock=lambda: clock_now[0]), sleep=lambda _s: None)
        for _ in range(40):
            try:
                replayed.ask(ask)
            except ReproError:
                pass
        shared = min(len(replay.events), len(injector.events))
        assert shared > 0
        assert [(e.index, e.op, e.kind) for e in replay.events[:shared]] == \
               [(e.index, e.op, e.kind) for e in injector.events[:shared]]


class TestAskBatchPartialFailure:
    def _candidates(self):
        mini = "http://example.org/mini/"
        members = [f"{mini}member/country/{which}" for which in (0, 1, 2, 3, 99)]
        return [
            f"ASK {{ ?o <{mini}prop/country_of_origin> <{member}> }}"
            for member in members
        ]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_verdicts_never_lost_or_reordered(self, mini_endpoint, seed):
        queries = self._candidates()
        baseline = mini_endpoint.ask_batch(queries)
        injector = chaotic(mini_endpoint, seed, timeout_rate=0.2,
                           transient_rate=0.2)
        for _ in range(10):  # walk the schedule through many batch rounds
            verdicts, degraded = try_ask_batch(injector, queries)
            assert len(verdicts) == len(queries)
            for verdict, truth in zip(verdicts, baseline):
                assert verdict is None or verdict == truth
            if None in verdicts:
                assert degraded
            if degraded:
                assert injector.faults_injected() > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cache_consistent_after_injected_timeouts(self, mini_kg, seed):
        endpoint = mini_kg.endpoint()
        endpoint.cache = QueryCache(max_results=512)
        queries = self._candidates()
        baseline = endpoint.ask_batch(queries)
        injector = chaotic(endpoint, seed, timeout_rate=0.3, transient_rate=0.2)
        for _ in range(10):
            try_ask_batch(injector, queries)
        # Whatever was cached during the storm, the clean endpoint still
        # answers exactly the fault-free truth.
        injector.disarm()
        assert try_ask_batch(injector, queries) == (baseline, False)
        assert endpoint.ask_batch(queries) == baseline


class TestServingUnderChaos:
    QUERY = "SELECT ?s WHERE { ?s <http://example.org/mini/prop/ref_period> ?y }"
    EXPECTED_FAULTS = (QueryEvaluationError, QueryTimeoutError,
                       TransientError, AdmissionError)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_results_correct_or_error_never_wrong(self, mini_kg, seed):
        endpoint = mini_kg.endpoint()
        truth = {row[0] for row in endpoint.select(self.QUERY)}
        injector = chaotic(endpoint, seed, timeout_rate=0.15, transient_rate=0.2)
        retry = RetryPolicy(max_retries=2, base_delay=0.0, jitter=0.0)
        with QueryService(injector, workers=2, retry=retry,
                          breaker=CircuitBreaker(recovery_timeout=0.0)) as service:
            answered = errored = 0
            for _ in range(30):
                try:
                    result = service.execute(self.QUERY)
                except self.EXPECTED_FAULTS:
                    errored += 1
                else:
                    answered += 1
                    assert {row[0] for row in result} == truth
            assert answered + errored == 30
            stats = service.stats()
            assert stats.requests >= answered  # cache hits short-circuit faults
        assert answered > 0  # a zero-recovery run means retry is broken

    @pytest.mark.parametrize("seed", SEEDS)
    def test_serve_stale_answers_during_outage(self, mini_kg, seed):
        endpoint = mini_kg.endpoint()
        truth = {row[0] for row in endpoint.select(self.QUERY)}
        # Warm-up is clean, then a long outage: (5, 200) covers the rest.
        injector = FaultInjector(
            endpoint, FaultPlan.random(seed, outages=[(5, 200)]),
        )
        breaker = CircuitBreaker(failure_rate=0.5, window=4, min_calls=2,
                                 recovery_timeout=3600.0)
        with QueryService(injector, workers=2, cache_size=0, breaker=breaker,
                          serve_stale=True) as service:
            assert {row[0] for row in service.execute(self.QUERY)} == truth
            outcomes = []
            for _ in range(10):
                try:
                    result = service.execute(self.QUERY)
                except self.EXPECTED_FAULTS:
                    outcomes.append("error")
                else:
                    outcomes.append("answered")
                    assert {row[0] for row in result} == truth
            # Once the breaker opens, every answer comes from the stale
            # tier — correct, just old.
            stats = service.stats()
            assert stats.breaker_trips >= 1
            assert stats.stale_served >= 1
            assert outcomes[-1] == "answered"  # the steady state is stale-serve


class TestServerUnderFaults:
    """The HTTP front-end under seeded chaos: correct or a mapped error,
    never a 200 with a wrong body, and a graceful drain at the end."""

    QUERY = TestServingUnderChaos.QUERY
    #: statuses the error-mapping table allows for injected faults
    #: (evaluation errors map to 400, shed/transient to 503, timeouts 504).
    FAULT_STATUSES = (400, 503, 504)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_correct_or_error_over_http(self, mini_kg, seed):
        import http.client
        import json as jsonlib

        from repro.serving import QueryService
        from repro.server import serve_in_thread

        endpoint = mini_kg.endpoint()
        truth = {row[0].value for row in endpoint.select(self.QUERY)}
        injector = chaotic(endpoint, seed, timeout_rate=0.15,
                           transient_rate=0.2)
        service = QueryService(injector, workers=2, cache_size=0)
        handle = serve_in_thread(service, own_service=True, retries=1)
        import threading
        import urllib.parse

        target = "/sparql?" + urllib.parse.urlencode({"query": self.QUERY})
        counts = {"answered": 0, "errored": 0}
        lock = threading.Lock()

        def tenant_worker(tenant):
            for _ in range(10):
                conn = http.client.HTTPConnection(
                    handle.server.host, handle.server.port, timeout=30)
                try:
                    conn.request("GET", target,
                                 headers={"X-Repro-Tenant": tenant})
                    response = conn.getresponse()
                    body = response.read()
                finally:
                    conn.close()
                if response.status == 200:
                    document = jsonlib.loads(body)
                    got = {b["s"]["value"]
                           for b in document["results"]["bindings"]}
                    assert got == truth, "wrong 200 body under chaos"
                    with lock:
                        counts["answered"] += 1
                else:
                    assert response.status in self.FAULT_STATUSES, body
                    assert jsonlib.loads(body)["error"]["status"] == \
                        response.status
                    with lock:
                        counts["errored"] += 1

        threads = [threading.Thread(target=tenant_worker, args=(f"t{i}",))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        handle.close()

        assert counts["answered"] + counts["errored"] == 30
        assert counts["answered"] > 0  # per-tenant retry must recover some
        # The dispatcher's books must balance after the drain.
        stats = handle.server.stats_document()
        assert stats["http"]["pending"] == 0
        for tenant, entry in stats["tenants"].items():
            assert entry["submitted"] == (entry["completed"]
                                          + entry["errors"] + entry["shed"])
