"""Tests for keyword-to-interpretation matching (Algorithm 1, MATCHES)."""

import pytest

from repro.core import find_interpretations
from repro.rdf import IRI

MINI = "http://example.org/mini/"


def prop(name):
    return IRI(MINI + "prop/" + name)


class TestFindInterpretations:
    def test_country_is_ambiguous(self, mini_endpoint, mini_vgraph):
        # "Germany" is a member of both origin and destination countries.
        interpretations = find_interpretations(mini_endpoint, mini_vgraph, "Germany")
        dims = {i.level.dimension_predicate for i in interpretations}
        assert dims == {prop("country_of_origin"), prop("country_of_destination")}
        assert all(i.level.depth == 1 for i in interpretations)

    def test_continent_matches_at_upper_level(self, mini_endpoint, mini_vgraph):
        interpretations = find_interpretations(mini_endpoint, mini_vgraph, "Europe")
        assert len(interpretations) == 2
        assert all(i.level.depth == 2 for i in interpretations)

    def test_year_unambiguous(self, mini_endpoint, mini_vgraph):
        interpretations = find_interpretations(mini_endpoint, mini_vgraph, "2014")
        assert len(interpretations) == 1
        assert interpretations[0].level.dimension_predicate == prop("ref_period")

    def test_case_insensitive(self, mini_endpoint, mini_vgraph):
        assert find_interpretations(mini_endpoint, mini_vgraph, "germany")
        assert find_interpretations(mini_endpoint, mini_vgraph, "GERMANY")

    def test_unknown_keyword(self, mini_endpoint, mini_vgraph):
        assert find_interpretations(mini_endpoint, mini_vgraph, "Atlantis") == []

    def test_predicate_label_is_not_a_member(self, mini_endpoint, mini_vgraph):
        # "Num Applicants" matches a predicate label; predicates are not
        # dimension members, so no interpretation results.
        assert find_interpretations(mini_endpoint, mini_vgraph, "Num Applicants") == []

    def test_member_recorded(self, mini_endpoint, mini_vgraph, mini_kg):
        interpretations = find_interpretations(mini_endpoint, mini_vgraph, "Syria")
        members = {i.member for i in interpretations}
        expected = {m.iri for m in mini_kg.members_of("origin", "country") if m.label == "Syria"}
        assert members == expected

    def test_results_deterministic(self, mini_endpoint, mini_vgraph):
        a = find_interpretations(mini_endpoint, mini_vgraph, "Germany")
        b = find_interpretations(mini_endpoint, mini_vgraph, "Germany")
        assert a == b

    def test_validation_filters_unreachable(self, mini_endpoint, mini_vgraph):
        # With validation every interpretation is backed by an observation.
        with_validation = find_interpretations(mini_endpoint, mini_vgraph, "Europe", validate=True)
        without = find_interpretations(mini_endpoint, mini_vgraph, "Europe", validate=False)
        assert set(with_validation) <= set(without)
        assert with_validation  # mini KG is dense enough to reach everything

    def test_token_fallback(self, eurostat_endpoint, eurostat_vgraph):
        # "January 2010" exists as a month label; searching a rarer token
        # combination should still resolve via the token index.
        interpretations = find_interpretations(
            eurostat_endpoint, eurostat_vgraph, "January 2010"
        )
        assert interpretations
        assert all(i.level.path[0].local_name() == "ref_period" for i in interpretations)
