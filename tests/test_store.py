"""Unit tests for the triple store: graph, indexes, dataset, views."""

import pytest

from repro.rdf import IRI, Literal, Quad, Triple, literal_from_python
from repro.store import Dataset, Graph, GraphView, TermDictionary, TripleIndex

EX = "http://example.org/"


def iri(name):
    return IRI(EX + name)


def t(s, p, o):
    return Triple(iri(s), iri(p), o if not isinstance(o, str) else iri(o))


@pytest.fixture
def graph():
    g = Graph()
    g.add(t("obs1", "dim", "Germany"))
    g.add(t("obs1", "val", literal_from_python(10)))
    g.add(t("obs2", "dim", "France"))
    g.add(t("obs2", "val", literal_from_python(20)))
    g.add(t("Germany", "inContinent", "Europe"))
    g.add(t("France", "inContinent", "Europe"))
    return g


class TestTermDictionary:
    def test_encode_is_stable(self):
        d = TermDictionary()
        a = d.encode(iri("x"))
        assert d.encode(iri("x")) == a
        assert d.decode(a) == iri("x")

    def test_lookup_missing(self):
        assert TermDictionary().lookup(iri("x")) is None

    def test_len(self):
        d = TermDictionary()
        d.encode(iri("x"))
        d.encode(iri("x"))
        d.encode(iri("y"))
        assert len(d) == 2


class TestTripleIndex:
    def test_add_remove(self):
        idx = TripleIndex()
        assert idx.add(1, 2, 3)
        assert not idx.add(1, 2, 3)
        assert len(idx) == 1
        assert idx.remove(1, 2, 3)
        assert not idx.remove(1, 2, 3)
        assert len(idx) == 0

    def test_all_pattern_shapes(self):
        idx = TripleIndex()
        idx.add(1, 2, 3)
        idx.add(1, 2, 4)
        idx.add(5, 2, 3)
        patterns = [
            ((1, 2, 3), 1),
            ((1, 2, None), 2),
            ((1, None, 3), 1),
            ((None, 2, 3), 2),
            ((1, None, None), 2),
            ((None, 2, None), 3),
            ((None, None, 3), 2),
            ((None, None, None), 3),
        ]
        for pattern, expected in patterns:
            assert len(list(idx.match(*pattern))) == expected, pattern
            assert idx.count(*pattern) == expected, pattern

    def test_remove_cleans_empty_buckets(self):
        idx = TripleIndex()
        idx.add(1, 2, 3)
        idx.remove(1, 2, 3)
        assert list(idx.match(None, None, None)) == []
        assert idx.count(1, None, None) == 0


class TestGraph:
    def test_len_and_contains(self, graph):
        assert len(graph) == 6
        assert t("obs1", "dim", "Germany") in graph
        assert t("obs1", "dim", "France") not in graph

    def test_duplicate_add(self, graph):
        assert not graph.add(t("obs1", "dim", "Germany"))
        assert len(graph) == 6

    def test_pattern_matching(self, graph):
        assert len(list(graph.triples(iri("obs1"), None, None))) == 2
        assert len(list(graph.triples(None, iri("dim"), None))) == 2
        assert len(list(graph.triples(None, None, iri("Europe")))) == 2

    def test_pattern_with_unknown_term(self, graph):
        assert list(graph.triples(iri("nope"), None, None)) == []
        assert graph.count(iri("nope"), None, None) == 0

    def test_subjects_objects_distinct(self, graph):
        assert set(graph.subjects(iri("inContinent"))) == {iri("Germany"), iri("France")}
        assert set(graph.objects(None, iri("inContinent"))) == {iri("Europe")}

    def test_predicates(self, graph):
        assert set(graph.predicates()) == {iri("dim"), iri("val"), iri("inContinent")}

    def test_predicate_cardinality(self, graph):
        assert graph.predicate_cardinality(iri("dim")) == 2
        assert graph.predicate_cardinality(iri("missing")) == 0

    def test_remove(self, graph):
        assert graph.remove(t("obs1", "dim", "Germany"))
        assert len(graph) == 5
        assert not graph.remove(t("obs1", "dim", "Germany"))

    def test_value(self, graph):
        assert graph.value(iri("Germany"), iri("inContinent"), None) == iri("Europe")
        assert graph.value(iri("Germany"), iri("missing"), None) is None

    def test_literals(self, graph):
        lex = {l.lexical for l in graph.literals()}
        assert lex == {"10", "20"}

    def test_ntriples_roundtrip(self, graph):
        doc = graph.to_ntriples()
        restored = Graph.from_ntriples(doc)
        assert len(restored) == len(graph)
        for triple in graph:
            assert triple in restored

    def test_count_matches_iteration(self, graph):
        for pattern in [
            (None, None, None),
            (iri("obs1"), None, None),
            (None, iri("dim"), None),
            (None, None, iri("Europe")),
            (iri("obs1"), iri("dim"), None),
        ]:
            assert graph.count(*pattern) == len(list(graph.triples(*pattern)))


class TestDataset:
    def test_named_graph_routing(self):
        ds = Dataset()
        name = iri("g1")
        ds.add(Quad(iri("s"), iri("p"), iri("o"), name))
        ds.add(t("s2", "p", "o"))
        assert len(ds.graph(name)) == 1
        assert len(ds.default_graph) == 1
        assert len(ds) == 2

    def test_graph_names_sorted(self):
        ds = Dataset()
        ds.graph(iri("b"))
        ds.graph(iri("a"))
        assert ds.graph_names() == [iri("a"), iri("b")]

    def test_union_view_deduplicates(self):
        ds = Dataset()
        shared = t("s", "p", "o")
        ds.graph(iri("g1")).add(shared)
        ds.graph(iri("g2")).add(shared)
        ds.graph(iri("g2")).add(t("s", "p", "o2"))
        view = ds.union_view()
        assert len(list(view.triples())) == 2
        assert view.count(iri("s"), None, None) == 2

    def test_union_view_missing_graph(self):
        with pytest.raises(KeyError):
            Dataset().union_view([iri("nope")])

    def test_view_requires_graphs(self):
        with pytest.raises(ValueError):
            GraphView([])

    def test_single_graph_view_fast_paths(self):
        g = Graph()
        g.add(t("s", "p", "o"))
        view = GraphView([g])
        assert len(view) == 1
        assert view.count(None, iri("p"), None) == 1
        assert set(view.predicates()) == {iri("p")}
