"""Alex the journalist: the paper's introduction scenario, end to end.

Alex investigates asylum-request volumes without knowing SPARQL:

1. provides "Germany" as an example entity and picks the interpretation
   aggregating requests by country of destination;
2. drills down by continent of origin to see where applicants come from;
3. subsets the (now larger) result with a percentile filter around
   Germany's volume;
4. finds the countries with request volumes most similar to Germany's.

Every query is synthesized or refined by the system; the script never
writes SPARQL.  Run with ``python examples/asylum_exploration.py``.
"""

from repro.core import ExplorationSession, VirtualSchemaGraph, account_paths
from repro.datasets import generate_eurostat
from repro.qb import OBSERVATION_CLASS


def show(title: str, body: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))
    print(body)


def main() -> None:
    kg = generate_eurostat(n_observations=3000, scale=0.4, seed=23)
    endpoint = kg.endpoint()
    vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
    session = ExplorationSession(endpoint, vgraph, similarity_k=3)

    # -- Step 1: bootstrap the analysis from a single entity ----------------
    candidates = session.synthesize("Germany")
    show("Interpretations of 'Germany'",
         "\n".join(f"[{i}] {c.description}" for i, c in enumerate(candidates)))

    destination_index = next(
        i for i, c in enumerate(candidates)
        if "Destination" in c.dimensions[0].label
    )
    results = session.choose(destination_index)
    show(f"Requests per country of destination ({len(results)} rows)",
         results.pretty(max_rows=10))

    # -- Step 2: drill down by continent of origin --------------------------
    drill = next(
        r for r in session.refinements("disaggregate")
        if "Origin / In Continent" in r.explanation
    )
    results = session.apply(drill)
    show(f"...by continent of origin ({len(results)} rows)",
         results.pretty(max_rows=10))

    # -- Step 3: focus on the percentile band around Germany ----------------
    bands = session.refinements("percentile")
    band = next(r for r in bands if "SUM" in r.explanation)
    results = session.apply(band)
    show(f"Percentile band containing Germany ({len(results)} rows)",
         band.explanation + "\n\n" + results.pretty(max_rows=10))

    # -- Step 4: countries with similar volumes -----------------------------
    session.back()  # try a different path from the drill-down step
    similar = next(
        r for r in session.refinements("similarity") if "SUM" in r.explanation
    )
    results = session.apply(similar)
    show("Destinations most similar to Germany", similar.explanation
         + "\n\n" + results.pretty(max_rows=12))

    # -- How much of the data did these few interactions expose? ------------
    accounting = account_paths(session.history)
    rows = accounting.rows()
    show("Exploration-path accounting (cf. Figure 8c)",
         "\n".join(
             f"interaction {r['interaction']} ({r['kind']}): "
             f"{r['options']} options -> {r['cumulative_paths']} cumulative paths, "
             f"{r['cumulative_tuples']} cumulative tuples"
             for r in rows
         ))


if __name__ == "__main__":
    main()
