"""Quickstart: example-driven analytics in five steps.

Builds a small statistical KG, bootstraps the system, and runs the paper's
running example — the input tuple ("Germany", "2014") — through synthesis
and one refinement of each kind.

Run with::

    python examples/quickstart.py
"""

from repro.core import ExplorationSession, VirtualSchemaGraph, profile
from repro.datasets import generate_eurostat
from repro.qb import OBSERVATION_CLASS


def main() -> None:
    # 1. A statistical KG (synthetic Eurostat asylum applications).  In a
    #    real deployment this is an existing SPARQL endpoint.
    kg = generate_eurostat(n_observations=2000, scale=0.4, seed=11)
    endpoint = kg.endpoint()
    print(f"KG ready: {len(kg.graph)} triples, {kg.n_observations} observations\n")

    # 2. Bootstrap: the system is given ONLY the endpoint and the
    #    observation class; everything else is crawled automatically.
    vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
    print("Discovered schema:")
    print(profile(vgraph).pretty(), "\n")

    # 3. Query synthesis from an example tuple -- no SPARQL written.
    session = ExplorationSession(endpoint, vgraph)
    candidates = session.synthesize("Germany", "2013")
    print(f"REOLAP found {len(candidates)} interpretations:")
    for index, candidate in enumerate(candidates):
        print(f"  [{index}] {candidate.description}")
    print()

    # 4. Pick one and inspect the results.
    results = session.choose(0)
    print("Chosen query:\n" + session.query.sparql() + "\n")
    print(f"Results ({len(results)} tuples):")
    print(results.pretty(max_rows=8), "\n")

    # 5. Example-driven refinements.
    for kind in session.refinement_kinds():
        proposals = session.refinements(kind)
        print(f"{kind}: {len(proposals)} proposals")
        if proposals:
            print(f"   e.g. {proposals[0].explanation}")
    print()

    refined = session.apply(session.refinements("disaggregate")[0])
    print(f"After drill-down: {len(refined)} tuples; query is now:")
    print(session.query.description)


if __name__ == "__main__":
    main()
