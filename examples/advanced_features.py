"""Advanced features: the extensions beyond the paper's core algorithms.

Demonstrates, on the Eurostat KG:

* multi-tuple examples (footnote 3) — two example rows disambiguate the
  columns jointly;
* negative examples (future work, Section 8) — exclude a member from all
  candidate queries;
* contrastive analytics (future work) — Germany vs France side by side;
* roll-up (the inverse of Disaggregate);
* insight extraction — outliers, skew, and the example's standing;
* exploration-trace export — a replayable JSON/Markdown record.

Run with ``python examples/advanced_features.py``.
"""

from repro.core import (
    ExplorationSession,
    VirtualSchemaGraph,
    contrast,
    insight_summary,
    rank_queries,
    reolap_multi,
    reolap_with_negatives,
    to_markdown,
)
from repro.datasets import generate_eurostat
from repro.qb import OBSERVATION_CLASS


def header(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    kg = generate_eurostat(n_observations=3000, scale=0.4, seed=47)
    endpoint = kg.endpoint()
    vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)

    header("Multi-tuple examples")
    queries = reolap_multi(
        endpoint, vgraph, [("Germany", "2010"), ("France", "2011")]
    )
    print(f"{len(queries)} interpretations for the two-row example table:")
    for query in queries:
        print("  -", query.description)

    header("Negative examples")
    queries = reolap_with_negatives(
        endpoint, vgraph, ("Germany",), negatives=("France",)
    )
    for query in queries:
        print("  -", query.description)
    results = endpoint.select(queries[0].to_select())
    print(f"  first query returns {len(results)} tuples (France excluded)")

    header("Contrast: Germany vs France")
    for comparison in contrast(endpoint, vgraph, ("Germany",), ("France",)):
        print(comparison.pretty())
        break

    header("Roll-up and ranked candidates")
    session = ExplorationSession(endpoint, vgraph)
    candidates = session.synthesize("Germany")
    for ranked in rank_queries(candidates):
        print(f"  score {ranked.score:9.1f}  {ranked.item.description}")
        print(f"        ({ranked.reason})")
    session.choose(0)
    rollups = session.refinements("rollup")
    print(f"\n  {len(rollups)} roll-up proposals:")
    for proposal in rollups:
        print("   -", proposal.explanation)
    if rollups:
        session.apply(rollups[0])
        print(f"  after roll-up: {len(session.results)} tuples")
        session.back()

    drill = session.refinements("disaggregate")[0]
    session.apply(drill)
    slices = session.refinements("slice")
    print(f"\n  {len(slices)} slice proposals after one drill-down:")
    for proposal in slices:
        print("   -", proposal.explanation)
    if slices:
        session.apply(slices[0])
        print(f"  after slice: {len(session.results)} tuples "
              f"x {len(session.results.variables)} columns")
        session.back()
    session.back()

    header("Insights")
    for line in insight_summary(session.query, session.results):
        print("  *", line)

    header("Exploration trace (Markdown excerpt)")
    session.apply(session.refinements("disaggregate")[0])
    report = to_markdown(session)
    print("\n".join(report.splitlines()[:14]))
    print("  ...")


if __name__ == "__main__":
    main()
