"""Exploring a heterogeneous open-domain KG (the DBpedia worst case).

The DBpedia Creative-Works view stresses the system in two ways the paper
highlights (Section 7.1): many dimensions share similar member values (so
keywords are highly ambiguous) and hierarchy steps are M-to-N (a genre has
several super-genres), which blows up result sets.  The script shows:

* how ambiguous a single keyword becomes (many interpretations);
* how the Disaggregate space grows with 23 levels;
* how an endpoint timeout on an expensive similarity refinement is
  surfaced to the caller instead of hanging the exploration.

Run with ``python examples/dbpedia_worst_case.py``.
"""

from repro.core import ExplorationSession, VirtualSchemaGraph, find_interpretations
from repro.datasets import generate_dbpedia
from repro.errors import QueryTimeoutError
from repro.qb import OBSERVATION_CLASS


def main() -> None:
    kg = generate_dbpedia(n_observations=1500, scale=0.03, seed=5)
    endpoint = kg.endpoint()
    vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
    print(f"DBpedia view: {vgraph.n_levels} levels, {vgraph.n_members} members, "
          f"{len(kg.graph)} triples")

    # Keyword ambiguity: era/country/decade pools are shared across
    # dimensions, so one keyword yields interpretations in several of them.
    for keyword in ("Era 0", "Country 1", "Decade 2"):
        interpretations = find_interpretations(endpoint, vgraph, keyword)
        dims = {i.level.dimension_predicate.local_name() for i in interpretations}
        print(f"\n'{keyword}': {len(interpretations)} interpretations "
              f"across dimensions {sorted(dims)}")

    session = ExplorationSession(endpoint, vgraph, similarity_k=3)
    candidates = session.synthesize("Era 0")
    print(f"\nREOLAP produced {len(candidates)} candidate queries for ('Era 0')")
    results = session.choose(0)
    print(f"Chosen: {session.query.description}")
    print(f"{len(results)} result rows")

    proposals = session.refinements("disaggregate")
    print(f"\nDisaggregate proposals over the 23-level schema: {len(proposals)}")
    for proposal in proposals[:5]:
        print("  -", proposal.explanation)
    print("  ...")

    # M-to-N blow-up: disaggregate twice, then attempt a similarity
    # refinement under a deliberately tight endpoint timeout, mirroring the
    # paper's 15-minute Virtuoso timeout at a laptop scale.
    session.apply(proposals[0])
    second = session.refinements("disaggregate")
    if second:
        session.apply(second[0])
    print(f"\nAfter two drill-downs: {len(session.results)} tuples")

    endpoint.default_timeout = 0.000001
    try:
        for refinement in session.refinements("similarity"):
            session.apply(refinement)
            break
        else:
            print("similarity produced no proposals on this path")
    except QueryTimeoutError:
        print("similarity refinement hit the endpoint timeout "
              f"(timeouts so far: {endpoint.stats.timeouts}) — "
              "the session survives and the user can backtrack")
        endpoint.default_timeout = None
        session.back()
        print(f"backtracked to: {session.query.description}")


if __name__ == "__main__":
    main()
