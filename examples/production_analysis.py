"""Environmental-science workflow over the Production KG.

Reproduces the information need voiced in the paper's user study: *"I
would expect it to contain information about China's electricity
production, and I want to see other countries with similar production"*
(Section 7.2).  The analyst:

1. starts from the entities "China" and "Production";
2. picks the producer-country reading;
3. drills down by industry sector;
4. asks for the producers most similar to China;
5. contrasts with a top-k view of the extreme producers.

Run with ``python examples/production_analysis.py``.
"""

from repro.core import ExplorationSession, VirtualSchemaGraph, profile
from repro.datasets import generate_production
from repro.qb import OBSERVATION_CLASS


def main() -> None:
    kg = generate_production(n_observations=3000, scale=0.02, seed=31)
    endpoint = kg.endpoint()
    vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
    print(profile(vgraph).pretty())

    session = ExplorationSession(endpoint, vgraph, similarity_k=4)

    candidates = session.synthesize("China", "Production")
    print(f"\n{len(candidates)} interpretations of ('China', 'Production'):")
    for index, candidate in enumerate(candidates):
        print(f"  [{index}] {candidate.description}")

    producer_index = next(
        i for i, c in enumerate(candidates)
        if any("Producer" in d.label for d in c.dimensions)
    )
    results = session.choose(producer_index)
    print(f"\nChina as producer ({len(results)} rows):")
    print(results.pretty(max_rows=8))

    sector_drill = next(
        r for r in session.refinements("disaggregate") if "Sector" in r.explanation
    )
    results = session.apply(sector_drill)
    print(f"\nDrilled down by sector ({len(results)} rows)")

    similar = next(
        r for r in session.refinements("similarity") if "SUM" in r.explanation
    )
    results = session.apply(similar)
    print("\n" + similar.explanation)
    print(results.pretty(max_rows=12))

    # Back to the sector view for a top-k contrast (the need the study's
    # CS participants voiced).
    session.back()
    topk = [r for r in session.refinements("topk") if "highest" in r.explanation]
    if topk:
        results = session.apply(topk[0])
        print("\n" + topk[0].explanation)
        print(results.pretty(max_rows=10))
    else:
        print("\n(no separable top-k threshold on this path)")


if __name__ == "__main__":
    main()
